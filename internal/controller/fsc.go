package controller

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"

	"bpomdp/internal/pomdp"
)

// FSCNode is one node of a compiled finite-state controller: a
// representative belief together with the decision the bounded controller
// made there at compile time, and per-observation edges to successor nodes.
type FSCNode struct {
	// Belief is the exact belief the node represents. Belief evolution is
	// deterministic given (belief, action, observation) and the compiler
	// uses the same update kernel as the runtime filter, so beliefs reached
	// along compiled trajectories match this field bit for bit.
	Belief pomdp.Belief
	// Action, Terminate, and Value replay the Decision the Max-Avg tree
	// produced at Belief at compile time (a_T tie-break included).
	Action    int
	Terminate bool
	Value     float64
	// Gap is the compile-time bound gap Value − V_B⁻(Belief): the Property
	// 1(b) slack the tree observed when the decision was made. The runtime
	// only serves a node whose gap is within the configured threshold.
	Gap float64
	// EdgeAction is the action whose observation function Edges condition
	// on. It equals Action everywhere except root nodes, whose edges follow
	// the episode's initial monitor sweep rather than their own decision.
	EdgeAction int
	// Edges maps each observation to the successor node index, −1 when the
	// observation is impossible under Belief or its successor was beyond the
	// compile budget. Nil for nodes whose decision ends the episode.
	Edges []int32
}

// decision reconstructs the Decision the bounded controller returned at the
// node's belief at compile time.
func (n *FSCNode) decision() Decision {
	return Decision{Action: n.Action, Terminate: n.Terminate, Value: n.Value}
}

// FSC is a compiled finite-state controller: a read-only node table indexed
// by bit-exact belief keys, extracted offline from the bounded controller by
// CompileFSC. One FSC is shared by any number of FSCDeciders; only the
// atomic hit/fallback counters mutate after construction, so concurrent
// deciders need no locking.
type FSC struct {
	states          int
	actions         int
	observations    int
	depth           int
	beta            float64
	terminateAction int

	nodes []FSCNode
	index map[string]int32

	hits      atomic.Uint64
	fallbacks atomic.Uint64
}

// NumStates returns the state-space size the FSC was compiled over.
func (f *FSC) NumStates() int { return f.states }

// NumActions returns the action count of the compiled model.
func (f *FSC) NumActions() int { return f.actions }

// NumObservations returns the observation count of the compiled model.
func (f *FSC) NumObservations() int { return f.observations }

// Depth returns the Max-Avg expansion depth the compiler decided with.
func (f *FSC) Depth() int { return f.depth }

// Beta returns the discount factor the compiler decided with.
func (f *FSC) Beta() float64 { return f.beta }

// TerminateAction returns a_T's index, or −1 for recovery-notification
// models.
func (f *FSC) TerminateAction() int { return f.terminateAction }

// NumNodes returns the number of compiled nodes.
func (f *FSC) NumNodes() int { return len(f.nodes) }

// Node returns a copy of node i.
func (f *FSC) Node(i int) FSCNode { return f.nodes[i] }

// NumEdges counts the compiled (non-missing) edges.
func (f *FSC) NumEdges() int {
	total := 0
	for i := range f.nodes {
		for _, e := range f.nodes[i].Edges {
			if e >= 0 {
				total++
			}
		}
	}
	return total
}

// MissingEdges counts edges that lead off the compiled table: observations
// that are impossible under the node's belief or whose successor fell
// beyond the compile budget. Runtime trajectories crossing one detach and
// re-attach (or fall back) by belief key.
func (f *FSC) MissingEdges() int {
	missing := 0
	for i := range f.nodes {
		for _, e := range f.nodes[i].Edges {
			if e < 0 {
				missing++
			}
		}
	}
	return missing
}

// MaxGap returns the largest compile-time bound gap across non-terminating
// nodes — the threshold at which every compiled node would be served.
func (f *FSC) MaxGap() float64 {
	max := 0.0
	for i := range f.nodes {
		n := &f.nodes[i]
		if n.Terminate && f.terminateAction < 0 {
			continue
		}
		if n.Gap > max {
			max = n.Gap
		}
	}
	return max
}

// Hits returns the cumulative number of decisions served from the table by
// all deciders sharing this FSC.
func (f *FSC) Hits() uint64 { return f.hits.Load() }

// Fallbacks returns the cumulative number of decisions that fell back to
// the Max-Avg tree across all deciders sharing this FSC.
func (f *FSC) Fallbacks() uint64 { return f.fallbacks.Load() }

// appendBeliefKey appends the bit-exact lookup key of pi to dst: the
// little-endian IEEE-754 bits of each coordinate. Two beliefs share a key
// iff they are bit-identical, which is exactly the equivalence the
// deterministic belief filter preserves along compiled trajectories.
func appendBeliefKey(dst []byte, pi pomdp.Belief) []byte {
	for _, x := range pi {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
	}
	return dst
}

// lookup returns the node index for a belief key, −1 when absent. The
// string conversion in the map read does not allocate.
func (f *FSC) lookup(key []byte) int32 {
	if i, ok := f.index[string(key)]; ok {
		return i
	}
	return -1
}

// buildIndex (re)builds the belief-key index, failing on duplicate beliefs
// — a compiled table must be a function from belief to decision.
func (f *FSC) buildIndex() error {
	f.index = make(map[string]int32, len(f.nodes))
	var buf []byte
	for i := range f.nodes {
		buf = appendBeliefKey(buf[:0], f.nodes[i].Belief)
		if j, ok := f.index[string(buf)]; ok {
			return fmt.Errorf("controller: fsc nodes %d and %d share a belief", j, i)
		}
		f.index[string(buf)] = int32(i)
	}
	return nil
}

// serves reports whether node n's compiled decision may be served under the
// given gap threshold. Certainty terminations (recovery notification) are
// always served: they depend only on the belief itself, never on bound
// quality, so replaying them is exact at any threshold.
func (f *FSC) serves(n *FSCNode, gapThreshold float64) bool {
	return (n.Terminate && f.terminateAction < 0) || n.Gap <= gapThreshold
}

// FSCDeciderConfig configures the runtime tier over a compiled FSC.
type FSCDeciderConfig struct {
	// GapThreshold is the largest compile-time bound gap at which a node's
	// stored decision is served from the table; beliefs attached to wider
	// nodes (or to no node at all) fall back to the Max-Avg tree. Zero is
	// the strictest setting — only nodes whose bound was already tight at
	// compile time are served, and served decisions are bit-identical to
	// the tree's by construction.
	GapThreshold float64
	// CollectStats records per-decision DecisionStats for both tiers. The
	// fallback controller must collect stats too.
	CollectStats bool
}

// FSCDecider is the tiered runtime decider: decisions at beliefs present in
// the compiled table (with an acceptable compile-time gap) are served as a
// table lookup; everything else falls back to the full Max-Avg tree.
//
// Because the compiler and the runtime filter share one deterministic
// belief-update kernel, a served decision is the exact Decision the
// fallback tree produced at the same belief over the same bound set at
// compile time — the table is an amortization, never an approximation, as
// long as the bound set is not mutated after compilation (ImproveOnline on
// the fallback weakens this to "both tiers are valid bounded decisions").
type FSCDecider struct {
	beliefTracker
	fsc      *FSC
	fallback *Bounded
	cfg      FSCDeciderConfig

	// node is the table node the tracked episode belief is attached to, −1
	// when the belief left the compiled graph.
	node   int32
	keyBuf []byte

	// DecideBatch scratch, reused across calls.
	fbIdx []int
	fbPis []pomdp.Belief
	fbOut []Decision

	// Stats scratch, populated only with cfg.CollectStats.
	lastStats  DecisionStats
	batchStats []DecisionStats

	// lastTier records which tier served the latest Decide — always, not
	// just under CollectStats; it is one constant string store.
	lastTier string
}

var (
	_ Controller       = (*FSCDecider)(nil)
	_ BatchDecider     = (*FSCDecider)(nil)
	_ BatchStatsSource = (*FSCDecider)(nil)
	_ TierSource       = (*FSCDecider)(nil)
)

// NewFSCDecider builds the tiered decider over a compiled FSC with the
// given tree fallback. The fallback's model must match the FSC's dimensions
// and terminate action; with CollectStats the fallback must collect stats
// as well, so fallback decisions keep their bound-gap telemetry.
func NewFSCDecider(fsc *FSC, fallback *Bounded, cfg FSCDeciderConfig) (*FSCDecider, error) {
	if fsc == nil {
		return nil, fmt.Errorf("controller: nil FSC")
	}
	if fallback == nil {
		return nil, fmt.Errorf("controller: FSC decider needs a tree fallback")
	}
	p := fallback.Model()
	if fsc.states != p.NumStates() || fsc.actions != p.NumActions() || fsc.observations != p.NumObservations() {
		return nil, fmt.Errorf("controller: fsc compiled for %d states/%d actions/%d observations, model has %d/%d/%d",
			fsc.states, fsc.actions, fsc.observations, p.NumStates(), p.NumActions(), p.NumObservations())
	}
	if fsc.terminateAction != fallback.cfg.TerminateAction {
		return nil, fmt.Errorf("controller: fsc terminate action %d, fallback uses %d",
			fsc.terminateAction, fallback.cfg.TerminateAction)
	}
	if cfg.GapThreshold < 0 {
		return nil, fmt.Errorf("controller: negative fsc gap threshold %v", cfg.GapThreshold)
	}
	if math.IsNaN(cfg.GapThreshold) {
		return nil, fmt.Errorf("controller: NaN fsc gap threshold")
	}
	if cfg.CollectStats && !fallback.cfg.CollectStats {
		return nil, fmt.Errorf("controller: fsc decider collects stats but its fallback does not")
	}
	return &FSCDecider{
		beliefTracker: newBeliefTracker(p),
		fsc:           fsc,
		fallback:      fallback,
		cfg:           cfg,
		node:          -1,
	}, nil
}

// Name implements Controller.
func (d *FSCDecider) Name() string {
	return fmt.Sprintf("fsc(%d nodes, gap<=%g)+%s", len(d.fsc.nodes), d.cfg.GapThreshold, d.fallback.Name())
}

// FSC returns the shared compiled table.
func (d *FSCDecider) FSC() *FSC { return d.fsc }

// Fallback returns the tree controller serving the slow tier.
func (d *FSCDecider) Fallback() *Bounded { return d.fallback }

// Model returns the (transformed) POMDP the decider decides over; the
// campaign engine's batched stepping mode uses it to run per-episode belief
// filters over the same state space.
func (d *FSCDecider) Model() *pomdp.POMDP { return d.p }

// Reset implements Controller.
func (d *FSCDecider) Reset(initial pomdp.Belief) error {
	if err := d.beliefTracker.Reset(initial); err != nil {
		return err
	}
	d.node = d.attach(d.belief)
	return nil
}

// attach finds the table node whose belief is bit-identical to pi, −1 when
// the belief is off the compiled graph.
func (d *FSCDecider) attach(pi pomdp.Belief) int32 {
	d.keyBuf = appendBeliefKey(d.keyBuf[:0], pi)
	return d.fsc.lookup(d.keyBuf)
}

// Observe implements Controller: it advances the Bayes filter and tracks
// the compiled graph alongside it — following the node's edge when the
// executed action matches the node's edge action, re-attaching by belief
// key otherwise. Edge targets are verified against the live belief, so a
// stale or hand-edited artifact degrades to fallback instead of replaying a
// wrong trajectory.
func (d *FSCDecider) Observe(action, obs int) error {
	if err := d.beliefTracker.Observe(action, obs); err != nil {
		return err
	}
	next := int32(-1)
	if d.node >= 0 {
		n := &d.fsc.nodes[d.node]
		if action == n.EdgeAction && obs < len(n.Edges) {
			next = n.Edges[obs]
			if next >= 0 && !beliefsEqual(d.fsc.nodes[next].Belief, d.belief) {
				next = -1
			}
		}
	}
	if next < 0 {
		next = d.attach(d.belief)
	}
	d.node = next
	return nil
}

// beliefsEqual reports bit-exact equality of two beliefs.
func beliefsEqual(a, b pomdp.Belief) bool {
	if len(a) != len(b) {
		return false
	}
	for i, x := range a {
		if math.Float64bits(x) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// Decide implements Controller: a table lookup when the tracked belief sits
// on a servable compiled node, one Max-Avg tree expansion otherwise. Both
// paths emit DecisionStats (with tier attribution) when configured.
func (d *FSCDecider) Decide() (Decision, error) {
	if d.belief == nil {
		return Decision{}, ErrNotReset
	}
	if d.node >= 0 {
		n := &d.fsc.nodes[d.node]
		if d.fsc.serves(n, d.cfg.GapThreshold) {
			d.fsc.hits.Add(1)
			d.lastTier = TierFSC
			if d.cfg.CollectStats {
				d.lastStats = d.fscStats(n, d.belief)
			}
			return n.decision(), nil
		}
	}
	d.fsc.fallbacks.Add(1)
	d.lastTier = TierTree
	dec, err := d.fallback.decideAt(d.belief)
	if err != nil {
		return Decision{}, err
	}
	if d.cfg.CollectStats {
		d.lastStats = d.fallback.lastStats
	}
	return dec, nil
}

// fscStats builds the DecisionStats of a table-served decision: the
// compile-time bound explanation (LeafBound = Value − Gap as recorded by
// the compiler), live belief entropy, a live bound-set snapshot, and zero
// expansion work — serving from the table expands nothing.
func (d *FSCDecider) fscStats(n *FSCNode, pi pomdp.Belief) DecisionStats {
	st := DecisionStats{
		Action:        n.Action,
		Terminate:     n.Terminate,
		Value:         n.Value,
		LeafBound:     n.Value - n.Gap,
		BoundGap:      n.Gap,
		BeliefEntropy: pi.Entropy(),
		SetSize:       d.fallback.set.Size(),
		SetEvictions:  d.fallback.set.Evictions(),
		Tier:          TierFSC,
	}
	if n.Terminate && d.fsc.terminateAction < 0 {
		// Certainty termination has no model action behind it.
		st.Action = -1
	}
	return st
}

// StatsEnabled implements StatsSource.
func (d *FSCDecider) StatsEnabled() bool { return d.cfg.CollectStats }

// LastTier implements TierSource: TierFSC after a table hit, TierTree after
// a fallback; empty before the first Decide.
func (d *FSCDecider) LastTier() string { return d.lastTier }

// DecisionStats implements StatsSource: the stats of the most recent
// Decide. Valid until the next decision call; only meaningful with
// CollectStats.
func (d *FSCDecider) DecisionStats() DecisionStats { return d.lastStats }

// BatchDecisionStats implements BatchStatsSource: per-belief stats of the
// most recent DecideBatch, indexed like its pis argument. Valid until the
// next decision call; only meaningful with CollectStats.
func (d *FSCDecider) BatchDecisionStats() []DecisionStats { return d.batchStats }

// DecideBatch implements BatchDecider: every belief found in the table on a
// servable node is answered in place; the misses share one batched tree
// expansion through the fallback. Like the fallback's own DecideBatch,
// results are bit-identical to per-belief Decide calls.
func (d *FSCDecider) DecideBatch(pis []pomdp.Belief, out []Decision) error {
	if len(out) < len(pis) {
		return fmt.Errorf("controller: batch decision buffer length %d < %d beliefs", len(out), len(pis))
	}
	collect := d.cfg.CollectStats
	if collect {
		if cap(d.batchStats) < len(pis) {
			d.batchStats = make([]DecisionStats, len(pis))
		}
		d.batchStats = d.batchStats[:len(pis)]
	}
	d.fbIdx = d.fbIdx[:0]
	d.fbPis = d.fbPis[:0]
	var hits uint64
	for j, pi := range pis {
		if len(pi) == d.fsc.states {
			if i := d.attach(pi); i >= 0 {
				n := &d.fsc.nodes[i]
				if d.fsc.serves(n, d.cfg.GapThreshold) {
					out[j] = n.decision()
					hits++
					if collect {
						d.batchStats[j] = d.fscStats(n, pi)
					}
					continue
				}
			}
		}
		d.fbIdx = append(d.fbIdx, j)
		d.fbPis = append(d.fbPis, pi)
	}
	if hits > 0 {
		d.fsc.hits.Add(hits)
	}
	if len(d.fbIdx) == 0 {
		return nil
	}
	d.fsc.fallbacks.Add(uint64(len(d.fbIdx)))
	if cap(d.fbOut) < len(d.fbIdx) {
		d.fbOut = make([]Decision, len(d.fbIdx))
	}
	d.fbOut = d.fbOut[:len(d.fbIdx)]
	if err := d.fallback.DecideBatch(d.fbPis, d.fbOut); err != nil {
		return err
	}
	for k, j := range d.fbIdx {
		out[j] = d.fbOut[k]
	}
	if collect {
		// Fallback stats already carry TierTree and alias the fallback's
		// QValues slab, which stays valid until this decider's next call.
		fst := d.fallback.BatchDecisionStats()
		for k, j := range d.fbIdx {
			d.batchStats[j] = fst[k]
		}
	}
	return nil
}
