package controller

import (
	"fmt"

	"bpomdp/internal/pomdp"
)

// Engine performs the finite-depth Max-Avg expansion of the POMDP
// dynamic-programming recursion (Figure 1(b) of the paper): future belief
// values are averaged over observations and maximized over actions, with a
// leaf evaluator (a lower bound or a heuristic) supplying the remaining
// reward at the frontier.
type Engine struct {
	p     *pomdp.POMDP
	beta  float64
	depth int
	leaf  pomdp.ValueFn
	sc    *pomdp.Scratch
}

// NewEngine builds a Max-Avg tree engine of the given depth ≥ 1 over model
// p with discount beta (use 1 for the paper's undiscounted criterion).
func NewEngine(p *pomdp.POMDP, depth int, beta float64, leaf pomdp.ValueFn) (*Engine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if depth < 1 {
		return nil, fmt.Errorf("controller: tree depth %d < 1", depth)
	}
	if beta <= 0 || beta > 1 {
		return nil, fmt.Errorf("controller: beta %v outside (0,1]", beta)
	}
	if leaf == nil {
		return nil, fmt.Errorf("controller: nil leaf evaluator")
	}
	return &Engine{p: p, beta: beta, depth: depth, leaf: leaf, sc: pomdp.NewScratch(p)}, nil
}

// Depth returns the expansion depth.
func (e *Engine) Depth() int { return e.depth }

// Choose expands the tree at belief π and returns the root backup: the
// maximizing action, its value, and all root Q-values.
func (e *Engine) Choose(pi pomdp.Belief) (pomdp.BackupResult, error) {
	return pomdp.Backup(e.p, e.sc, pi, e.beta, pomdp.ValueFunc(func(b pomdp.Belief) float64 {
		return e.evaluate(b, e.depth-1)
	}))
}

// Value evaluates the depth-limited value estimate at π without committing
// to an action.
func (e *Engine) Value(pi pomdp.Belief) (float64, error) {
	res, err := e.Choose(pi)
	if err != nil {
		return 0, err
	}
	return res.Value, nil
}

// evaluate computes the Max-Avg value with `remaining` further expansions.
// The shared scratch is safe across recursion levels: Backup consumes it
// fully inside Successors before any leaf evaluation runs, and successor
// beliefs are freshly allocated.
func (e *Engine) evaluate(pi pomdp.Belief, remaining int) float64 {
	if remaining == 0 {
		return e.leaf.Value(pi)
	}
	res, err := pomdp.Backup(e.p, e.sc, pi, e.beta, pomdp.ValueFunc(func(b pomdp.Belief) float64 {
		return e.evaluate(b, remaining-1)
	}))
	if err != nil {
		// Backup only fails on malformed inputs, which NewEngine and the
		// recursion structure rule out; surface loudly if it ever happens.
		panic(fmt.Sprintf("controller: internal backup failure: %v", err))
	}
	return res.Value
}
