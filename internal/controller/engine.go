package controller

import (
	"fmt"
	"math"

	"bpomdp/internal/pomdp"
)

// Engine performs the finite-depth Max-Avg expansion of the POMDP
// dynamic-programming recursion (Figure 1(b) of the paper): future belief
// values are averaged over observations and maximized over actions, with a
// leaf evaluator (a lower bound or a heuristic) supplying the remaining
// reward at the frontier.
//
// Besides the per-belief Choose, the engine offers ChooseBatch, which
// expands the tree for a whole batch of beliefs at once: each tree level
// shares one successor arena across the batch and, when the leaf implements
// pomdp.BatchValueFn, evaluates the entire frontier with a single batched
// call. Per-belief results are bit-identical to Choose — the engine
// preserves the sequential per-action, per-observation floating-point
// accumulation order for every belief — so the two entry points are freely
// interchangeable.
type Engine struct {
	p         *pomdp.POMDP
	beta      float64
	depth     int
	leaf      pomdp.ValueFn
	batchLeaf pomdp.BatchValueFn // non-nil when leaf supports batched evaluation
	sc        *pomdp.Scratch

	levels   []*batchLevel // reusable per-depth expansion state
	rootVals []float64     // root value scratch for ChooseBatch

	ctr EngineCounters // monotone work counters; see Counters
}

// batchLevel is the reusable state of one tree level of a batched
// expansion: the shared successor arena and the per-belief accumulators for
// the action currently being expanded.
type batchLevel struct {
	buf    *pomdp.SuccessorBuf
	q      []float64 // per-belief Q accumulator for the current action
	counts []int     // successors appended per belief for the current action
	vals   []float64 // values of the level's frontier beliefs
}

// NewEngine builds a Max-Avg tree engine of the given depth ≥ 1 over model
// p with discount beta (use 1 for the paper's undiscounted criterion).
func NewEngine(p *pomdp.POMDP, depth int, beta float64, leaf pomdp.ValueFn) (*Engine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if depth < 1 {
		return nil, fmt.Errorf("controller: tree depth %d < 1", depth)
	}
	if beta <= 0 || beta > 1 {
		return nil, fmt.Errorf("controller: beta %v outside (0,1]", beta)
	}
	if leaf == nil {
		return nil, fmt.Errorf("controller: nil leaf evaluator")
	}
	e := &Engine{p: p, beta: beta, depth: depth, leaf: leaf, sc: pomdp.NewScratch(p)}
	e.batchLeaf, _ = leaf.(pomdp.BatchValueFn)
	return e, nil
}

// Depth returns the expansion depth.
func (e *Engine) Depth() int { return e.depth }

// Counters snapshots the engine's monotone work counters. Stats collection
// differences two snapshots around a decision; the counters are plain fields,
// valid only from the goroutine driving the engine.
func (e *Engine) Counters() EngineCounters { return e.ctr }

// Choose expands the tree at belief π and returns the root backup: the
// maximizing action, its value, and all root Q-values.
func (e *Engine) Choose(pi pomdp.Belief) (pomdp.BackupResult, error) {
	e.ctr.Nodes++
	return pomdp.Backup(e.p, e.sc, pi, e.beta, pomdp.ValueFunc(func(b pomdp.Belief) float64 {
		return e.evaluate(b, e.depth-1)
	}))
}

// ChooseBatch expands the tree at every belief in pis and writes the root
// backup of belief j into out[j], reusing out[j].QValues when its capacity
// allows. Results are bit-identical to calling Choose on each belief in
// turn. out must be at least as long as pis.
func (e *Engine) ChooseBatch(pis []pomdp.Belief, out []pomdp.BackupResult) error {
	if len(out) < len(pis) {
		return fmt.Errorf("controller: batch result buffer length %d < %d beliefs", len(out), len(pis))
	}
	n, nA := e.p.NumStates(), e.p.NumActions()
	for j, pi := range pis {
		if len(pi) != n {
			return fmt.Errorf("pomdp: belief length %d, want %d", len(pi), n)
		}
		if cap(out[j].QValues) < nA {
			out[j].QValues = make([]float64, nA)
		}
		out[j].QValues = out[j].QValues[:nA]
	}
	if cap(e.rootVals) < len(pis) {
		e.rootVals = make([]float64, len(pis))
	}
	e.expand(0, e.depth, pis, e.rootVals[:len(pis)], out[:len(pis)])
	return nil
}

// Value evaluates the depth-limited value estimate at π without committing
// to an action.
func (e *Engine) Value(pi pomdp.Belief) (float64, error) {
	res, err := e.Choose(pi)
	if err != nil {
		return 0, err
	}
	return res.Value, nil
}

// evaluate computes the Max-Avg value with `remaining` further expansions.
// The shared scratch is safe across recursion levels: Backup consumes it
// fully inside Successors before any leaf evaluation runs, and successor
// beliefs are freshly allocated.
func (e *Engine) evaluate(pi pomdp.Belief, remaining int) float64 {
	if remaining == 0 {
		e.ctr.LeafEvals++
		return e.leaf.Value(pi)
	}
	e.ctr.Nodes++
	res, err := pomdp.Backup(e.p, e.sc, pi, e.beta, pomdp.ValueFunc(func(b pomdp.Belief) float64 {
		return e.evaluate(b, remaining-1)
	}))
	if err != nil {
		// Backup only fails on malformed inputs, which NewEngine and the
		// recursion structure rule out; surface loudly if it ever happens.
		panic(fmt.Sprintf("controller: internal backup failure: %v", err))
	}
	return res.Value
}

// level returns the reusable expansion state for tree level lvl, growing
// the level list on first use.
func (e *Engine) level(lvl int) *batchLevel {
	for len(e.levels) <= lvl {
		e.levels = append(e.levels, &batchLevel{buf: pomdp.NewSuccessorBuf(e.p)})
	}
	return e.levels[lvl]
}

// expand is the batched Max-Avg recursion: it computes, for every belief in
// pis, the value with `remaining` further expansions into vals, and — when
// res is non-nil (the root call) — the per-action Q-values and maximizing
// action into res. For each action the whole batch's successors are
// enumerated into one arena and the next level (or the leaf bound) is
// evaluated over that frontier in a single pass; the per-belief
// floating-point accumulation order is exactly the sequential engine's
// (reward first, then successors in ascending observation order, actions
// compared in ascending order), which is what makes the results
// bit-identical to Choose.
func (e *Engine) expand(lvl, remaining int, pis []pomdp.Belief, vals []float64, res []pomdp.BackupResult) {
	f := e.level(lvl)
	m := len(pis)
	e.ctr.Nodes += uint64(m)
	if cap(f.q) < m {
		f.q = make([]float64, m)
		f.counts = make([]int, m)
	}
	q, counts := f.q[:m], f.counts[:m]
	for j := range vals {
		vals[j] = math.Inf(-1)
	}
	if res != nil {
		for j := range res {
			res[j].Value = math.Inf(-1)
			res[j].Action = -1
		}
	}
	for a := 0; a < e.p.NumActions(); a++ {
		f.buf.Reset()
		for j, pi := range pis {
			q[j] = e.p.ExpectedReward(pi, a)
			counts[j] = e.p.AppendSuccessors(e.sc, f.buf, pi, a)
		}
		frontier := f.buf.Beliefs()
		probs := f.buf.Probs()
		if cap(f.vals) < len(frontier) {
			f.vals = make([]float64, len(frontier))
		}
		fvals := f.vals[:len(frontier)]
		if remaining == 1 {
			e.leafValues(frontier, fvals)
		} else {
			e.expand(lvl+1, remaining-1, frontier, fvals, nil)
		}
		idx := 0
		for j := range pis {
			qj := q[j]
			for c := 0; c < counts[j]; c++ {
				qj += e.beta * probs[idx] * fvals[idx]
				idx++
			}
			if res != nil {
				res[j].QValues[a] = qj
			}
			if qj > vals[j] {
				vals[j] = qj
				if res != nil {
					res[j].Action = a
				}
			}
		}
	}
	if res != nil {
		for j := range res {
			res[j].Value = vals[j]
		}
	}
}

// leafValues evaluates the leaf bound over a frontier, batched when the
// leaf supports it.
func (e *Engine) leafValues(pis []pomdp.Belief, out []float64) {
	e.ctr.LeafEvals += uint64(len(pis))
	if e.batchLeaf != nil {
		e.ctr.SlabPasses++
		e.batchLeaf.ValueBatch(pis, out)
		return
	}
	for j, pi := range pis {
		out[j] = e.leaf.Value(pi)
	}
}
