package controller

import (
	"testing"

	"bpomdp/internal/bounds"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
)

func prunedFixture(t *testing.T, depth int) (*Engine, *PrunedEngine, *fixture) {
	t.Helper()
	f := newFixture(t)
	full, err := NewEngine(f.term, depth, 1, f.set.AsValueFn())
	if err != nil {
		t.Fatal(err)
	}
	upper, err := bounds.QMDP(f.term, bounds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := NewPrunedEngine(f.term, depth, 1, f.set.AsValueFn(), upper)
	if err != nil {
		t.Fatal(err)
	}
	return full, pruned, f
}

func TestNewPrunedEngineValidation(t *testing.T) {
	f := newFixture(t)
	upper, err := bounds.QMDP(f.term, bounds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	leaf := f.set.AsValueFn()
	if _, err := NewPrunedEngine(f.term, 0, 1, leaf, upper); err == nil {
		t.Error("depth 0 accepted")
	}
	if _, err := NewPrunedEngine(f.term, 1, 2, leaf, upper); err == nil {
		t.Error("beta 2 accepted")
	}
	if _, err := NewPrunedEngine(f.term, 1, 1, nil, upper); err == nil {
		t.Error("nil lower accepted")
	}
	if _, err := NewPrunedEngine(f.term, 1, 1, leaf, upper[:1]); err == nil {
		t.Error("short upper accepted")
	}
}

func TestPrunedEngineMatchesFullExpansion(t *testing.T) {
	for _, depth := range []int{1, 2} {
		full, pruned, f := prunedFixture(t, depth)
		r := rng.New(uint64(40 + depth))
		for trial := 0; trial < 25; trial++ {
			pi := make(pomdp.Belief, f.term.NumStates())
			for i := range pi {
				pi[i] = r.Float64()
			}
			if !pi.Vec().Normalize() {
				continue
			}
			want, err := full.Choose(pi)
			if err != nil {
				t.Fatal(err)
			}
			got, prunedMask, err := pruned.Choose(pi)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got.Value, want.Value, 1e-9) {
				t.Errorf("depth %d trial %d: pruned value %v != full %v", depth, trial, got.Value, want.Value)
			}
			// The chosen action must be maximal in the full expansion too
			// (it may differ from want.Action only by an exact tie).
			if !almostEqual(want.QValues[got.Action], want.Value, 1e-9) {
				t.Errorf("depth %d trial %d: pruned picked non-maximal action %d", depth, trial, got.Action)
			}
			if prunedMask[got.Action] {
				t.Errorf("depth %d trial %d: chosen action marked pruned", depth, trial)
			}
		}
	}
}

func TestPrunedEngineActuallyPrunes(t *testing.T) {
	_, pruned, f := prunedFixture(t, 2)
	pi := pomdp.UniformBelief(f.term.NumStates())
	if _, err := pruned.Value(pi); err != nil {
		t.Fatal(err)
	}
	nodes, cut := pruned.Stats()
	if cut == 0 {
		t.Errorf("no pruning happened (nodes=%d)", nodes)
	}
	if nodes == 0 {
		t.Error("no nodes evaluated")
	}
	t.Logf("depth-2 expansion: %d nodes evaluated, %d pruned (%.0f%%)",
		nodes, cut, 100*float64(cut)/float64(nodes+cut))
}

func TestPrunedEngineRejectsShortBelief(t *testing.T) {
	_, pruned, _ := prunedFixture(t, 1)
	if _, _, err := pruned.Choose(pomdp.Belief{1}); err == nil {
		t.Error("short belief accepted")
	}
}
