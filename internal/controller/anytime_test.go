package controller

import (
	"testing"
	"time"

	"bpomdp/internal/bounds"
	"bpomdp/internal/linalg"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
)

func newAnytime(t *testing.T, f *fixture, budget time.Duration, maxDepth int) *Anytime {
	t.Helper()
	upper, err := bounds.QMDP(f.term, bounds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnytime(f.term, f.set, upper, AnytimeConfig{
		Budget:          budget,
		MaxDepth:        maxDepth,
		TerminateAction: f.idx.Action,
		NullStates:      []int{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewAnytimeValidation(t *testing.T) {
	f := newFixture(t)
	upper, err := bounds.QMDP(f.term, bounds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAnytime(f.term, f.set, upper, AnytimeConfig{Budget: 0, TerminateAction: f.idx.Action}); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := NewAnytime(f.term, f.set, upper, AnytimeConfig{Budget: time.Second, MaxDepth: -1, TerminateAction: f.idx.Action}); err == nil {
		t.Error("negative max depth accepted")
	}
	if _, err := NewAnytime(f.term, nil, upper, AnytimeConfig{Budget: time.Second, TerminateAction: f.idx.Action}); err == nil {
		t.Error("nil set accepted")
	}
	if _, err := NewAnytime(f.term, f.set, linalg.Vector{0}, AnytimeConfig{Budget: time.Second, TerminateAction: f.idx.Action}); err == nil {
		t.Error("short upper bound accepted")
	}
	if _, err := NewAnytime(f.term, f.set, upper, AnytimeConfig{Budget: time.Second, TerminateAction: -1}); err == nil {
		t.Error("notification regime without NullStates accepted")
	}
}

func TestAnytimeGenerousBudgetReachesMaxDepth(t *testing.T) {
	f := newFixture(t)
	a := newAnytime(t, f, 10*time.Second, 3)
	if err := a.Reset(pomdp.UniformBelief(f.term.NumStates())); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Decide(); err != nil {
		t.Fatal(err)
	}
	if a.LastDepth() != 3 {
		t.Errorf("depth = %d, want 3 with a generous budget", a.LastDepth())
	}
}

func TestAnytimeTinyBudgetStopsEarly(t *testing.T) {
	f := newFixture(t)
	a := newAnytime(t, f, time.Nanosecond, 3)
	if err := a.Reset(pomdp.UniformBelief(f.term.NumStates())); err != nil {
		t.Fatal(err)
	}
	d, err := a.Decide()
	if err != nil {
		t.Fatal(err)
	}
	if a.LastDepth() != 1 {
		t.Errorf("depth = %d, want 1 under a 1ns budget", a.LastDepth())
	}
	if d.Action < 0 && !d.Terminate {
		t.Error("no decision produced")
	}
}

func TestAnytimeRequiresReset(t *testing.T) {
	f := newFixture(t)
	a := newAnytime(t, f, time.Second, 2)
	if _, err := a.Decide(); err == nil {
		t.Error("Decide before Reset accepted")
	}
}

func TestAnytimeRecoversAndTerminates(t *testing.T) {
	f := newFixture(t)
	a := newAnytime(t, f, 50*time.Millisecond, 2)
	root := rng.New(404)
	initial, err := pomdp.UniformOver(f.term.NumStates(), []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for ep := 0; ep < 15; ep++ {
		stream := root.SplitN("ep", ep)
		trueState := 1 + stream.IntN(2)
		rec, _ := episode(t, f.term, a, initial, trueState, stream, 200)
		if !rec {
			t.Errorf("episode %d: anytime controller terminated unrecovered", ep)
		}
	}
}
