package controller

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"bpomdp/internal/bounds"
	"bpomdp/internal/models"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
)

// compileFixtureFSC compiles the two-server termination fixture's FSC from
// the uniform-over-original-states root, against the fixture's frozen
// RA-Bound set.
func compileFixtureFSC(t *testing.T, f *fixture, cfg FSCCompileConfig) *FSC {
	t.Helper()
	n := f.term.NumStates()
	orig := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if s != f.idx.State {
			orig = append(orig, s)
		}
	}
	root, err := pomdp.UniformOver(n, orig)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TerminateAction == 0 {
		cfg.TerminateAction = f.idx.Action
	}
	cfg.InitialObservationAction = f.ts.ActionObserve
	fsc, err := CompileFSC(f.term, f.set, []pomdp.Belief{root}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fsc
}

// TestCompileFSCNodeParity is the cornerstone exactness test: every compiled
// node's stored decision and bound gap must be bit-identical to what a
// Bounded controller over the same frozen set produces at the node's belief.
func TestCompileFSCNodeParity(t *testing.T) {
	f := newFixture(t)
	fsc := compileFixtureFSC(t, f, FSCCompileConfig{Depth: 1})
	if fsc.NumNodes() < 2 {
		t.Fatalf("compiled only %d nodes; expansion did not reach past the root", fsc.NumNodes())
	}
	ctrl, err := NewBounded(f.term, f.set, BoundedConfig{
		Depth: 1, TerminateAction: f.idx.Action, NullStates: []int{0}, CollectStats: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < fsc.NumNodes(); i++ {
		n := fsc.Node(i)
		d, err := ctrl.decideAt(n.Belief)
		if err != nil {
			t.Fatal(err)
		}
		if d != n.decision() {
			t.Errorf("node %d: compiled decision %+v, tree says %+v", i, n.decision(), d)
		}
		st := ctrl.DecisionStats()
		if st.BoundGap != n.Gap {
			t.Errorf("node %d: compiled gap %v, tree observed %v", i, n.Gap, st.BoundGap)
		}
	}
}

// TestCompileFSCNotificationCertainty compiles in the recovery-notification
// regime and pins that certainty nodes replay the online controller's
// short-circuit: Terminate with zero value, and parity with decideAt at
// every node.
func TestCompileFSCNotificationCertainty(t *testing.T) {
	ts, err := models.NewTwoServer(models.TwoServerConfig{Coverage: 1})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := pomdp.AbsorbNullStates(ts.Model, ts.NullStates)
	if err != nil {
		t.Fatal(err)
	}
	set, err := bounds.RASet(mod, bounds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fsc, err := CompileFSC(mod, set, []pomdp.Belief{pomdp.UniformBelief(mod.NumStates())}, FSCCompileConfig{
		Depth: 1, TerminateAction: -1, NullStates: ts.NullStates,
		InitialObservationAction: ts.ActionObserve,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewBounded(mod, set, BoundedConfig{Depth: 1, TerminateAction: -1, NullStates: ts.NullStates})
	if err != nil {
		t.Fatal(err)
	}
	sawCertainty := false
	for i := 0; i < fsc.NumNodes(); i++ {
		n := fsc.Node(i)
		d, err := ctrl.decideAt(n.Belief)
		if err != nil {
			t.Fatal(err)
		}
		if d != n.decision() {
			t.Errorf("node %d: compiled decision %+v, tree says %+v", i, n.decision(), d)
		}
		if n.Terminate {
			sawCertainty = true
			if n.Value != 0 {
				t.Errorf("node %d: certainty termination with value %v, want 0", i, n.Value)
			}
			if n.Edges != nil {
				t.Errorf("node %d: certainty termination keeps %d edges", i, len(n.Edges))
			}
		}
	}
	if !sawCertainty {
		t.Error("perfect-coverage compile reached no certainty termination node")
	}
}

// TestFSCDeciderEpisodeParity drives the tiered decider and a twin tree
// controller through identical episodes (same RNG streams) and requires
// bit-identical decisions throughout, at the strictest and the loosest gap
// thresholds. The set is frozen (no online improvement), so the table is an
// amortization of the tree, never an approximation.
func TestFSCDeciderEpisodeParity(t *testing.T) {
	f := newFixture(t)
	fsc := compileFixtureFSC(t, f, FSCCompileConfig{Depth: 1})
	newTree := func() *Bounded {
		ctrl, err := NewBounded(f.term, f.set, BoundedConfig{
			Depth: 1, TerminateAction: f.idx.Action, NullStates: []int{0},
		})
		if err != nil {
			t.Fatal(err)
		}
		return ctrl
	}
	n := f.term.NumStates()
	orig := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if s != f.idx.State {
			orig = append(orig, s)
		}
	}
	initial, err := pomdp.UniformOver(n, orig)
	if err != nil {
		t.Fatal(err)
	}
	for _, threshold := range []float64{0, fsc.MaxGap() + 1} {
		dec, err := NewFSCDecider(fsc, newTree(), FSCDeciderConfig{GapThreshold: threshold})
		if err != nil {
			t.Fatal(err)
		}
		tree := newTree()
		for trial := 0; trial < 30; trial++ {
			seed := uint64(1000 + trial)
			faultState := 1 + trial%2
			recA, stepsA := episode(t, f.base, dec, initial, faultState, rng.New(seed), 200)
			recB, stepsB := episode(t, f.base, tree, initial, faultState, rng.New(seed), 200)
			if recA != recB || stepsA != stepsB {
				t.Errorf("threshold %v trial %d: fsc episode (rec=%v steps=%d) diverges from tree (rec=%v steps=%d)",
					threshold, trial, recA, stepsA, recB, stepsB)
			}
		}
	}
	if fsc.Hits() == 0 {
		t.Error("no decision was ever served from the table")
	}
	if fsc.Fallbacks() == 0 {
		t.Error("no decision ever fell back (threshold 0 should force fallbacks)")
	}
}

// TestFSCDeciderStatsTiers pins the tier attribution and the compile-time
// bound-gap telemetry of both serving tiers.
func TestFSCDeciderStatsTiers(t *testing.T) {
	f := newFixture(t)
	fsc := compileFixtureFSC(t, f, FSCCompileConfig{Depth: 1})
	newTree := func() *Bounded {
		ctrl, err := NewBounded(f.term, f.set, BoundedConfig{
			Depth: 1, TerminateAction: f.idx.Action, NullStates: []int{0}, CollectStats: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ctrl
	}
	root := fsc.Node(0)

	// Loose threshold: the root decision is a table hit tagged TierFSC, with
	// the compile-time gap.
	dec, err := NewFSCDecider(fsc, newTree(), FSCDeciderConfig{GapThreshold: fsc.MaxGap() + 1, CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.Reset(root.Belief); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decide(); err != nil {
		t.Fatal(err)
	}
	st := dec.DecisionStats()
	if st.Tier != TierFSC {
		t.Errorf("table hit reported tier %q, want %q", st.Tier, TierFSC)
	}
	if st.BoundGap != root.Gap || st.Value != root.Value || st.TreeNodes != 0 {
		t.Errorf("table-hit stats %+v do not replay the compiled node %+v", st, root)
	}

	// Strict threshold on a positive-gap node: fallback, tagged TierTree,
	// with the tree's own live telemetry — the satellite-6 regression (the
	// fallback path must never drop tier attribution).
	wide := -1
	for i := 0; i < fsc.NumNodes(); i++ {
		if n := fsc.Node(i); !n.Terminate && n.Gap > 0 {
			wide = i
			break
		}
	}
	if wide < 0 {
		t.Fatal("no positive-gap node to force a fallback with")
	}
	dec2, err := NewFSCDecider(fsc, newTree(), FSCDeciderConfig{GapThreshold: 0, CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := dec2.Reset(fsc.Node(wide).Belief); err != nil {
		t.Fatal(err)
	}
	if _, err := dec2.Decide(); err != nil {
		t.Fatal(err)
	}
	st = dec2.DecisionStats()
	if st.Tier != TierTree {
		t.Errorf("fallback decision reported tier %q, want %q", st.Tier, TierTree)
	}
	if st.TreeNodes == 0 {
		t.Error("fallback stats report zero expansion work")
	}
}

// TestFSCDecideBatchMatchesTree: at any threshold over a frozen set, the
// tiered batch decider must reproduce the plain tree's DecideBatch
// bit-for-bit on a mix of compiled and off-graph beliefs, and must actually
// split the batch across both tiers.
func TestFSCDecideBatchMatchesTree(t *testing.T) {
	f := newFixture(t)
	fsc := compileFixtureFSC(t, f, FSCCompileConfig{Depth: 1})
	newTree := func(stats bool) *Bounded {
		ctrl, err := NewBounded(f.term, f.set, BoundedConfig{
			Depth: 1, TerminateAction: f.idx.Action, NullStates: []int{0}, CollectStats: stats,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ctrl
	}
	pis := batchBeliefs(rng.New(71), 9, f.term.NumStates())
	for i := 0; i < fsc.NumNodes() && i < 8; i++ {
		pis = append(pis, fsc.Node(i).Belief)
	}
	dec, err := NewFSCDecider(fsc, newTree(true), FSCDeciderConfig{GapThreshold: fsc.MaxGap() + 1, CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	h0, f0 := fsc.Hits(), fsc.Fallbacks()
	got := make([]Decision, len(pis))
	if err := dec.DecideBatch(pis, got); err != nil {
		t.Fatal(err)
	}
	if fsc.Hits() == h0 {
		t.Error("batch served no table hits despite compiled beliefs in it")
	}
	if fsc.Fallbacks() == f0 {
		t.Error("batch fell back for nothing despite off-graph beliefs in it")
	}
	want := make([]Decision, len(pis))
	if err := newTree(false).DecideBatch(pis, want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("tiered DecideBatch diverges from tree:\nwant: %+v\ngot:  %+v", want, got)
	}
	sts := dec.BatchDecisionStats()
	if len(sts) != len(pis) {
		t.Fatalf("batch stats length %d, want %d", len(sts), len(pis))
	}
	for j, st := range sts {
		if st.Tier != TierFSC && st.Tier != TierTree {
			t.Errorf("belief %d: batch stats carry tier %q", j, st.Tier)
		}
	}
}

// TestFSCRoundTrip pins the artifact format: Encode → Decode must reproduce
// every node bit-for-bit, and a decider over the decoded table must serve
// the same decisions.
func TestFSCRoundTrip(t *testing.T) {
	f := newFixture(t)
	fsc := compileFixtureFSC(t, f, FSCCompileConfig{Depth: 1})
	var buf bytes.Buffer
	if err := fsc.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFSC(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumStates() != fsc.NumStates() || got.NumActions() != fsc.NumActions() ||
		got.NumObservations() != fsc.NumObservations() || got.Depth() != fsc.Depth() ||
		got.Beta() != fsc.Beta() || got.TerminateAction() != fsc.TerminateAction() {
		t.Fatalf("decoded dimensions diverge: %+v vs %+v", got, fsc)
	}
	if got.NumNodes() != fsc.NumNodes() {
		t.Fatalf("decoded %d nodes, want %d", got.NumNodes(), fsc.NumNodes())
	}
	for i := 0; i < fsc.NumNodes(); i++ {
		if !reflect.DeepEqual(got.Node(i), fsc.Node(i)) {
			t.Errorf("node %d diverges after round trip:\nwant: %+v\ngot:  %+v", i, fsc.Node(i), got.Node(i))
		}
	}
}

// TestFSCDecodeRejectsCorruption: torn writes, bit flips, wrong schema, and
// trailing garbage must all be hard errors — a recovery controller must
// never serve decisions from a damaged table.
func TestFSCDecodeRejectsCorruption(t *testing.T) {
	f := newFixture(t)
	fsc := compileFixtureFSC(t, f, FSCCompileConfig{Depth: 1})
	var buf bytes.Buffer
	if err := fsc.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{1, 7, len(good) / 2, len(good) - 1} {
			if _, err := DecodeFSC(bytes.NewReader(good[:cut])); err == nil {
				t.Errorf("truncation at %d accepted", cut)
			}
		}
	})
	t.Run("bitflip", func(t *testing.T) {
		for _, pos := range []int{9, len(good) / 3, len(good) - 3} {
			bad := append([]byte(nil), good...)
			bad[pos] ^= 0x40
			if _, err := DecodeFSC(bytes.NewReader(bad)); err == nil {
				t.Errorf("bit flip at %d accepted", pos)
			}
		}
	})
	t.Run("trailing", func(t *testing.T) {
		bad := append(append([]byte(nil), good...), good[:12]...)
		if _, err := DecodeFSC(bytes.NewReader(bad)); err == nil {
			t.Error("trailing data accepted")
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := DecodeFSC(bytes.NewReader(nil)); err == nil {
			t.Error("empty input accepted")
		}
	})
}

func TestNewFSCDeciderValidation(t *testing.T) {
	f := newFixture(t)
	fsc := compileFixtureFSC(t, f, FSCCompileConfig{Depth: 1})
	tree := func(stats bool) *Bounded {
		ctrl, err := NewBounded(f.term, f.set, BoundedConfig{
			Depth: 1, TerminateAction: f.idx.Action, NullStates: []int{0}, CollectStats: stats,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ctrl
	}
	if _, err := NewFSCDecider(nil, tree(false), FSCDeciderConfig{}); err == nil {
		t.Error("nil FSC accepted")
	}
	if _, err := NewFSCDecider(fsc, nil, FSCDeciderConfig{}); err == nil {
		t.Error("nil fallback accepted")
	}
	if _, err := NewFSCDecider(fsc, tree(false), FSCDeciderConfig{GapThreshold: -1}); err == nil {
		t.Error("negative gap threshold accepted")
	}
	if _, err := NewFSCDecider(fsc, tree(false), FSCDeciderConfig{GapThreshold: math.NaN()}); err == nil {
		t.Error("NaN gap threshold accepted")
	}
	if _, err := NewFSCDecider(fsc, tree(false), FSCDeciderConfig{CollectStats: true}); err == nil {
		t.Error("stats-collecting decider over a bare fallback accepted")
	}
	// A fallback over a different model (the 3-state absorbed base instead of
	// the 4-state termination transform) must be rejected on dimensions.
	mod, err := pomdp.AbsorbNullStates(f.base, f.ts.NullStates)
	if err != nil {
		t.Fatal(err)
	}
	baseSet, err := bounds.RASet(mod, bounds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	baseCtrl, err := NewBounded(mod, baseSet, BoundedConfig{Depth: 1, TerminateAction: -1, NullStates: f.ts.NullStates})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFSCDecider(fsc, baseCtrl, FSCDeciderConfig{}); err == nil {
		t.Error("dimension-mismatched fallback accepted")
	}
}

func TestCompileFSCValidation(t *testing.T) {
	f := newFixture(t)
	uniform := pomdp.UniformBelief(f.term.NumStates())
	if _, err := CompileFSC(f.term, nil, []pomdp.Belief{uniform}, FSCCompileConfig{TerminateAction: f.idx.Action}); err == nil {
		t.Error("nil set accepted")
	}
	if _, err := CompileFSC(f.term, f.set, nil, FSCCompileConfig{TerminateAction: f.idx.Action}); err == nil {
		t.Error("no roots accepted")
	}
	if _, err := CompileFSC(f.term, f.set, []pomdp.Belief{{1, 0}}, FSCCompileConfig{TerminateAction: f.idx.Action}); err == nil {
		t.Error("short root belief accepted")
	}
	if _, err := CompileFSC(f.term, f.set, []pomdp.Belief{uniform}, FSCCompileConfig{
		TerminateAction: f.idx.Action, InitialObservationAction: -1,
	}); err == nil {
		t.Error("out-of-range initial observation action accepted")
	}
}

// TestCompileFSCMaxNodes: the node budget must cap the table, keep edges to
// beyond-budget successors missing (−1), and leave every stored edge target
// in range.
func TestCompileFSCMaxNodes(t *testing.T) {
	f := newFixture(t)
	full := compileFixtureFSC(t, f, FSCCompileConfig{Depth: 1})
	capped := compileFixtureFSC(t, f, FSCCompileConfig{Depth: 1, MaxNodes: 3})
	if capped.NumNodes() != 3 {
		t.Fatalf("capped compile produced %d nodes, want 3", capped.NumNodes())
	}
	if full.NumNodes() <= 3 {
		t.Fatalf("fixture graph too small (%d nodes) to exercise the budget", full.NumNodes())
	}
	if capped.MissingEdges() == 0 {
		t.Error("capped table has no missing edges")
	}
	for i := 0; i < capped.NumNodes(); i++ {
		for o, e := range capped.Node(i).Edges {
			if e >= int32(capped.NumNodes()) {
				t.Errorf("node %d obs %d: edge target %d out of range", i, o, e)
			}
		}
	}
}

// FuzzFSCDecode: arbitrary bytes must never panic the decoder, and any
// artifact it accepts must survive a re-encode/re-decode round trip.
func FuzzFSCDecode(fz *testing.F) {
	ts, err := models.NewTwoServer(models.TwoServerConfig{Coverage: 0.9, FalsePositive: 0.05})
	if err != nil {
		fz.Fatal(err)
	}
	term, idx, err := pomdp.WithTermination(ts.Model, pomdp.TerminationConfig{
		NullStates:           ts.NullStates,
		OperatorResponseTime: 10,
		RateReward:           ts.RateRewards,
	})
	if err != nil {
		fz.Fatal(err)
	}
	set, err := bounds.RASet(term, bounds.Options{})
	if err != nil {
		fz.Fatal(err)
	}
	fsc, err := CompileFSC(term, set, []pomdp.Belief{pomdp.UniformBelief(term.NumStates())}, FSCCompileConfig{
		Depth: 1, TerminateAction: idx.Action, InitialObservationAction: ts.ActionObserve,
	})
	if err != nil {
		fz.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fsc.Encode(&buf); err != nil {
		fz.Fatal(err)
	}
	good := buf.Bytes()
	fz.Add(good)
	fz.Add(good[:len(good)/2])
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x10
	fz.Add(flipped)
	fz.Add([]byte{})
	fz.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})

	fz.Fuzz(func(t *testing.T, data []byte) {
		f, err := DecodeFSC(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := f.Encode(&out); err != nil {
			t.Fatalf("accepted artifact fails to re-encode: %v", err)
		}
		if _, err := DecodeFSC(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("re-encoded artifact rejected: %v", err)
		}
	})
}
