package controller

import (
	"reflect"
	"testing"

	"bpomdp/internal/bounds"
	"bpomdp/internal/models"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
)

// batchBeliefs draws m random points of the n-simplex.
func batchBeliefs(stream *rng.Stream, m, n int) []pomdp.Belief {
	pis := make([]pomdp.Belief, m)
	for i := range pis {
		pi := make(pomdp.Belief, n)
		sum := 0.0
		for s := range pi {
			pi[s] = stream.Float64()
			sum += pi[s]
		}
		for s := range pi {
			pi[s] /= sum
		}
		pis[i] = pi
	}
	return pis
}

// TestChooseBatchMatchesChoose pins the engine's bit-identity contract:
// ChooseBatch over random beliefs must reproduce per-belief Choose results
// exactly (Value, Action, and every Q-value compared with ==, via
// reflect.DeepEqual) at depth 1 and at depth 2, where the batched recursion
// shares frontiers across the batch.
func TestChooseBatchMatchesChoose(t *testing.T) {
	f := newFixture(t)
	for _, depth := range []int{1, 2} {
		engine, err := NewEngine(f.term, depth, 1, f.set)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 10; trial++ {
			pis := batchBeliefs(rng.New(uint64(100*depth+trial)), 1+trial*3, f.term.NumStates())
			want := make([]pomdp.BackupResult, len(pis))
			for j, pi := range pis {
				res, err := engine.Choose(pi)
				if err != nil {
					t.Fatal(err)
				}
				want[j] = res
			}
			got := make([]pomdp.BackupResult, len(pis))
			if err := engine.ChooseBatch(pis, got); err != nil {
				t.Fatal(err)
			}
			for j := range want {
				if !reflect.DeepEqual(want[j], got[j]) {
					t.Errorf("depth %d trial %d belief %d:\nChoose:      %+v\nChooseBatch: %+v",
						depth, trial, j, want[j], got[j])
				}
			}
		}
	}
}

// TestChooseBatchReusesResultBuffers: a second call with the same out slice
// must not grow fresh QValues, and must still be exact.
func TestChooseBatchReusesResultBuffers(t *testing.T) {
	f := newFixture(t)
	engine, err := NewEngine(f.term, 1, 1, f.set)
	if err != nil {
		t.Fatal(err)
	}
	pis := batchBeliefs(rng.New(5), 6, f.term.NumStates())
	out := make([]pomdp.BackupResult, len(pis))
	if err := engine.ChooseBatch(pis, out); err != nil {
		t.Fatal(err)
	}
	firstQ := make([]*float64, len(out))
	for j := range out {
		firstQ[j] = &out[j].QValues[0]
	}
	if err := engine.ChooseBatch(pis, out); err != nil {
		t.Fatal(err)
	}
	for j := range out {
		if firstQ[j] != &out[j].QValues[0] {
			t.Errorf("belief %d: QValues reallocated on reuse", j)
		}
	}
}

func TestChooseBatchValidation(t *testing.T) {
	f := newFixture(t)
	engine, err := NewEngine(f.term, 1, 1, f.set)
	if err != nil {
		t.Fatal(err)
	}
	pis := batchBeliefs(rng.New(9), 3, f.term.NumStates())
	if err := engine.ChooseBatch(pis, make([]pomdp.BackupResult, 2)); err == nil {
		t.Error("short result buffer accepted")
	}
	bad := []pomdp.Belief{{0.5, 0.5}}
	if err := engine.ChooseBatch(bad, make([]pomdp.BackupResult, 1)); err == nil {
		t.Error("wrong-length belief accepted")
	}
}

// TestDecideBatchMatchesDecide: the controller-level batch entry point must
// reproduce per-belief decisions exactly, including the a_T tie-break at the
// Sφ vertex (where the passive action's Q ties the terminate action's).
func TestDecideBatchMatchesDecide(t *testing.T) {
	f := newFixture(t)
	ctrl, err := NewBounded(f.term, f.set, BoundedConfig{Depth: 1, TerminateAction: f.idx.Action, NullStates: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	pis := batchBeliefs(rng.New(11), 20, f.term.NumStates())
	// Include the Sφ vertex and a near-certain belief: the tie-break cases.
	vertex := make(pomdp.Belief, f.term.NumStates())
	vertex[0] = 1
	pis = append(pis, vertex)

	want := make([]Decision, len(pis))
	for j, pi := range pis {
		d, err := ctrl.decideAt(pi)
		if err != nil {
			t.Fatal(err)
		}
		want[j] = d
	}
	got := make([]Decision, len(pis))
	if err := ctrl.DecideBatch(pis, got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("DecideBatch diverges from Decide:\nwant: %+v\ngot:  %+v", want, got)
	}
	if !got[len(got)-1].Terminate {
		t.Error("Sφ vertex not terminated: the a_T tie-break is not exercised")
	}
}

// TestDecideBatchNotificationCertainty: in the recovery-notification regime,
// certain beliefs are answered by the short-circuit, uncertain ones by the
// batched expansion, and both must match the sequential path.
func TestDecideBatchNotificationCertainty(t *testing.T) {
	ts, err := models.NewTwoServer(models.TwoServerConfig{Coverage: 1})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := pomdp.AbsorbNullStates(ts.Model, ts.NullStates)
	if err != nil {
		t.Fatal(err)
	}
	set, err := bounds.RASet(mod, bounds.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewBounded(mod, set, BoundedConfig{Depth: 1, TerminateAction: -1, NullStates: ts.NullStates})
	if err != nil {
		t.Fatal(err)
	}
	n := mod.NumStates()
	certain := make(pomdp.Belief, n)
	for _, s := range ts.NullStates {
		certain[s] = 1.0 / float64(len(ts.NullStates))
	}
	pis := append(batchBeliefs(rng.New(13), 8, n), certain)

	want := make([]Decision, len(pis))
	for j, pi := range pis {
		d, err := ctrl.decideAt(pi)
		if err != nil {
			t.Fatal(err)
		}
		want[j] = d
	}
	got := make([]Decision, len(pis))
	if err := ctrl.DecideBatch(pis, got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("notification-regime DecideBatch diverges:\nwant: %+v\ngot:  %+v", want, got)
	}
	if !got[len(got)-1].Terminate {
		t.Error("certain belief not terminated by the short-circuit")
	}
}

// TestDecideBatchFallbackWithOnlineImprovement: with ImproveOnline the
// batched entry point must fall back to sequential decisions — pinned by
// running twin controllers over twin sets and checking both the decisions
// and the resulting bound sets agree plane-for-plane.
func TestDecideBatchFallbackWithOnlineImprovement(t *testing.T) {
	f := newFixture(t)
	newImproving := func() *Bounded {
		set, err := bounds.RASet(f.term, bounds.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ctrl, err := NewBounded(f.term, set, BoundedConfig{
			Depth: 1, TerminateAction: f.idx.Action, NullStates: []int{0}, ImproveOnline: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ctrl
	}
	seqCtrl, batCtrl := newImproving(), newImproving()
	pis := batchBeliefs(rng.New(17), 12, f.term.NumStates())

	want := make([]Decision, len(pis))
	for j, pi := range pis {
		d, err := seqCtrl.decideAt(pi)
		if err != nil {
			t.Fatal(err)
		}
		want[j] = d
	}
	got := make([]Decision, len(pis))
	if err := batCtrl.DecideBatch(pis, got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("fallback decisions diverge:\nwant: %+v\ngot:  %+v", want, got)
	}
	a, b := seqCtrl.Set(), batCtrl.Set()
	if a.Size() != b.Size() {
		t.Fatalf("online-improved sets diverged: %d vs %d planes", a.Size(), b.Size())
	}
	for i := 0; i < a.Size(); i++ {
		if !reflect.DeepEqual(a.Plane(i), b.Plane(i)) {
			t.Errorf("plane %d diverged after online improvement", i)
		}
	}
}

func TestDecideBatchValidation(t *testing.T) {
	f := newFixture(t)
	ctrl, err := NewBounded(f.term, f.set, BoundedConfig{Depth: 1, TerminateAction: f.idx.Action})
	if err != nil {
		t.Fatal(err)
	}
	pis := batchBeliefs(rng.New(19), 3, f.term.NumStates())
	if err := ctrl.DecideBatch(pis, make([]Decision, 2)); err == nil {
		t.Error("short decision buffer accepted")
	}
	if err := ctrl.DecideBatch([]pomdp.Belief{{1, 0}}, make([]Decision, 1)); err == nil {
		t.Error("wrong-length belief accepted")
	}
}
