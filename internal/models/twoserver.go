// Package models provides small, self-contained recovery models used by the
// examples, tests, and benchmarks — most importantly the two-redundant-
// server model of the paper's Figure 1(a).
package models

import (
	"fmt"

	"bpomdp/internal/linalg"
	"bpomdp/internal/pomdp"
)

// TwoServerConfig parameterizes the Figure 1(a) model.
type TwoServerConfig struct {
	// Coverage is the probability that the monitor localizes an existing
	// fault (reports "a failed" when a is faulty). 1 gives the system
	// recovery notification.
	Coverage float64
	// FalsePositive is the probability that the monitor reports either
	// server failed while the system is healthy. Non-zero values break
	// recovery notification.
	FalsePositive float64
}

// TwoServer names the pieces of the built model.
type TwoServer struct {
	// Model is the validated POMDP before any convergence transform.
	Model *pomdp.POMDP
	// NullStates is Sφ (the single "null" state).
	NullStates []int
	// RateRewards[s] is r̄(s), the cost rate while sitting in state s.
	RateRewards linalg.Vector

	// Indices for readability in callers.
	StateNull, StateFaultA, StateFaultB           int
	ActionRestartA, ActionRestartB, ActionObserve int
	ObsClear, ObsAFailed, ObsBFailed              int
}

// NewTwoServer builds the two-redundant-server recovery model of the
// paper's Figure 1(a): states {null, fault-a, fault-b}, actions
// {restart-a, restart-b, observe}, and a monitor whose output is the
// observation alphabet {clear, a-failed, b-failed}.
//
// Restarting the faulty server always fixes it (cost 0.5); restarting the
// healthy one costs 1 and leaves the fault in place; observing a faulty
// system costs 0.5. The null state accrues no cost under observe, so all
// Property 1(a) "no free action" costs are confined to Sφ.
func NewTwoServer(cfg TwoServerConfig) (*TwoServer, error) {
	if cfg.Coverage < 0 || cfg.Coverage > 1 {
		return nil, fmt.Errorf("models: coverage %v outside [0,1]", cfg.Coverage)
	}
	if cfg.FalsePositive < 0 || cfg.FalsePositive > 0.5 {
		return nil, fmt.Errorf("models: false positive rate %v outside [0,0.5]", cfg.FalsePositive)
	}
	b := pomdp.NewBuilder()
	ts := &TwoServer{
		StateNull:      b.State("null"),
		StateFaultA:    b.State("fault-a"),
		StateFaultB:    b.State("fault-b"),
		ActionRestartA: b.Action("restart-a"),
		ActionRestartB: b.Action("restart-b"),
		ActionObserve:  b.Action("observe"),
		ObsClear:       b.Observation("obs-clear"),
		ObsAFailed:     b.Observation("obs-a-failed"),
		ObsBFailed:     b.Observation("obs-b-failed"),
	}
	actions := []string{"restart-a", "restart-b", "observe"}
	for _, a := range actions {
		b.Transition("null", a, "null", 1)
	}
	b.Transition("fault-a", "restart-a", "null", 1)
	b.Transition("fault-a", "restart-b", "fault-a", 1)
	b.Transition("fault-a", "observe", "fault-a", 1)
	b.Transition("fault-b", "restart-b", "null", 1)
	b.Transition("fault-b", "restart-a", "fault-b", 1)
	b.Transition("fault-b", "observe", "fault-b", 1)

	b.Reward("null", "restart-a", -0.5)
	b.Reward("null", "restart-b", -0.5)
	b.Reward("fault-a", "restart-a", -0.5)
	b.Reward("fault-b", "restart-b", -0.5)
	b.Reward("fault-a", "restart-b", -1)
	b.Reward("fault-b", "restart-a", -1)
	b.Reward("fault-a", "observe", -0.5)
	b.Reward("fault-b", "observe", -0.5)

	for _, a := range actions {
		b.Observe("null", a, "obs-clear", 1-2*cfg.FalsePositive)
		if cfg.FalsePositive > 0 {
			b.Observe("null", a, "obs-a-failed", cfg.FalsePositive)
			b.Observe("null", a, "obs-b-failed", cfg.FalsePositive)
		}
		b.Observe("fault-a", a, "obs-a-failed", cfg.Coverage)
		b.Observe("fault-b", a, "obs-b-failed", cfg.Coverage)
		if cfg.Coverage < 1 {
			b.Observe("fault-a", a, "obs-clear", 1-cfg.Coverage)
			b.Observe("fault-b", a, "obs-clear", 1-cfg.Coverage)
		}
	}
	model, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("models: two-server: %w", err)
	}
	ts.Model = model
	ts.NullStates = []int{ts.StateNull}
	ts.RateRewards = linalg.Vector{0, -0.5, -0.5}
	return ts, nil
}
