package models

import (
	"testing"

	"bpomdp/internal/pomdp"
)

func TestNewTwoServerValid(t *testing.T) {
	ts, err := NewTwoServer(TwoServerConfig{Coverage: 0.9, FalsePositive: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Model.Validate(); err != nil {
		t.Fatal(err)
	}
	if ts.Model.NumStates() != 3 || ts.Model.NumActions() != 3 || ts.Model.NumObservations() != 3 {
		t.Errorf("shape %d/%d/%d", ts.Model.NumStates(), ts.Model.NumActions(), ts.Model.NumObservations())
	}
	if !ts.Model.M.AllRewardsNonPositive() {
		t.Error("Condition 2 violated")
	}
	reach := ts.Model.M.CanReach(ts.NullStates)
	for s, ok := range reach {
		if !ok {
			t.Errorf("Condition 1 violated: state %d cannot reach Sφ", s)
		}
	}
}

func TestNewTwoServerNotificationRegimes(t *testing.T) {
	perfect, err := NewTwoServer(TwoServerConfig{Coverage: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := pomdp.HasRecoveryNotification(perfect.Model, perfect.NullStates); !got {
		t.Error("perfect monitor should have recovery notification")
	}
	noisy, err := NewTwoServer(TwoServerConfig{Coverage: 0.9, FalsePositive: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := pomdp.HasRecoveryNotification(noisy.Model, noisy.NullStates); got {
		t.Error("noisy monitor should not have recovery notification")
	}
}

func TestNewTwoServerRejectsBadConfig(t *testing.T) {
	if _, err := NewTwoServer(TwoServerConfig{Coverage: 1.5}); err == nil {
		t.Error("coverage > 1 accepted")
	}
	if _, err := NewTwoServer(TwoServerConfig{Coverage: 1, FalsePositive: 0.7}); err == nil {
		t.Error("false positive > 0.5 accepted")
	}
	if _, err := NewTwoServer(TwoServerConfig{Coverage: -0.1}); err == nil {
		t.Error("negative coverage accepted")
	}
}
