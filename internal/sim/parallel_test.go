package sim

import (
	"errors"
	"math"
	"testing"

	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
)

func TestRunCampaignParallelMatchesSequentialForStatelessController(t *testing.T) {
	rm, ts := twoServerRecovery(t)
	runner, err := NewRunner(rm, 500)
	if err != nil {
		t.Fatal(err)
	}
	factory := func() (controller.Controller, pomdp.Belief, error) {
		ctrl, err := controller.NewMostLikely(ts.Model, controller.MostLikelyConfig{
			NullStates: ts.NullStates, TerminationProbability: 0.999,
		})
		return ctrl, pomdp.UniformBelief(3), err
	}
	const episodes = 60
	// Sequential baseline via the same factory.
	ctrl, initial, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	seq, err := runner.RunCampaign(ctrl, initial, []int{1, 2}, episodes, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		par, err := runner.RunCampaignParallel(factory, []int{1, 2}, episodes, workers, rng.New(5))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.Episodes != episodes || par.Recovered != seq.Recovered {
			t.Errorf("workers=%d: episodes/recovered = %d/%d, want %d/%d",
				workers, par.Episodes, par.Recovered, episodes, seq.Recovered)
		}
		// The most-likely controller carries no cross-episode state, so the
		// merged statistics must match the sequential run exactly.
		if math.Abs(par.Cost.Mean()-seq.Cost.Mean()) > 1e-9 {
			t.Errorf("workers=%d: cost %v != sequential %v", workers, par.Cost.Mean(), seq.Cost.Mean())
		}
		if math.Abs(par.Cost.Variance()-seq.Cost.Variance()) > 1e-6 {
			t.Errorf("workers=%d: variance %v != sequential %v", workers, par.Cost.Variance(), seq.Cost.Variance())
		}
		if math.Abs(par.MonitorCalls.Mean()-seq.MonitorCalls.Mean()) > 1e-9 {
			t.Errorf("workers=%d: monitor calls differ", workers)
		}
	}
}

func TestRunCampaignParallelBoundedControllers(t *testing.T) {
	rm, _ := twoServerRecovery(t)
	runner, err := NewRunner(rm, 500)
	if err != nil {
		t.Fatal(err)
	}
	// Each worker gets its own Prepared (and thus its own mutable bound
	// set); the bounded controller is not safe to share across goroutines.
	factory := func() (controller.Controller, pomdp.Belief, error) {
		prep, err := core.Prepare(rm, core.PrepareOptions{OperatorResponseTime: 10})
		if err != nil {
			return nil, nil, err
		}
		// Bootstrapping before control is part of the paper's protocol: the
		// raw RA-Bound can be loose enough to make premature termination
		// look attractive.
		if _, err := prep.Bootstrap(10, controller.VariantAverage, 1, rng.New(77)); err != nil {
			return nil, nil, err
		}
		ctrl, err := prep.NewController(core.ControllerConfig{Depth: 1, ImproveOnline: true})
		if err != nil {
			return nil, nil, err
		}
		initial, err := prep.InitialBelief()
		return ctrl, initial, err
	}
	res, err := runner.RunCampaignParallel(factory, []int{1, 2}, 40, 4, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovered != res.Episodes {
		t.Errorf("recovered %d/%d", res.Recovered, res.Episodes)
	}
}

func TestRunCampaignParallelValidation(t *testing.T) {
	rm, ts := twoServerRecovery(t)
	runner, err := NewRunner(rm, 10)
	if err != nil {
		t.Fatal(err)
	}
	factory := func() (controller.Controller, pomdp.Belief, error) {
		ctrl, err := controller.NewMostLikely(ts.Model, controller.MostLikelyConfig{
			NullStates: ts.NullStates, TerminationProbability: 0.999,
		})
		return ctrl, pomdp.UniformBelief(3), err
	}
	if _, err := runner.RunCampaignParallel(factory, nil, 5, 2, rng.New(1)); err == nil {
		t.Error("empty faults accepted")
	}
	if _, err := runner.RunCampaignParallel(factory, []int{1}, 0, 2, rng.New(1)); err == nil {
		t.Error("zero episodes accepted")
	}
	if _, err := runner.RunCampaignParallel(nil, []int{1}, 5, 2, rng.New(1)); err == nil {
		t.Error("nil factory accepted")
	}
	bad := func() (controller.Controller, pomdp.Belief, error) {
		return nil, nil, errors.New("boom")
	}
	if _, err := runner.RunCampaignParallel(bad, []int{1}, 5, 2, rng.New(1)); err == nil {
		t.Error("factory error swallowed")
	}
}
