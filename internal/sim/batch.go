package sim

import (
	"fmt"
	"sort"
	"time"

	"bpomdp/internal/controller"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
)

// beliefFilter is the per-episode Bayes filter of the batched campaign
// engine: it tracks one live episode's belief exactly as the belief-based
// controllers do (ping-ponged UpdateInto buffers, zero allocations per
// step), while the decisions for all live episodes come from one shared
// controller.BatchDecider. Splitting the filter from the decider is what
// lets a single decision engine amortize its tree expansion across a whole
// stripe of episodes.
type beliefFilter struct {
	p      *pomdp.POMDP
	sc     *pomdp.Scratch
	belief pomdp.Belief
	spare  pomdp.Belief
	name   string
}

// newBeliefFilter builds a filter over p sharing the given update scratch.
// A worker's filters advance strictly sequentially (the scratch is transient
// per UpdateInto call), so one scratch serves a whole stripe — the scratch
// is by far the heaviest part of a filter to build.
func newBeliefFilter(p *pomdp.POMDP, sc *pomdp.Scratch, name string) *beliefFilter {
	return &beliefFilter{p: p, sc: sc, name: name}
}

// Name implements stepObserver.
func (f *beliefFilter) Name() string { return f.name }

// Reset starts a new episode from the given initial belief, with the same
// validations the controllers' belief tracker applies.
func (f *beliefFilter) Reset(initial pomdp.Belief) error {
	n := f.p.NumStates()
	if len(initial) != n {
		return fmt.Errorf("sim: initial belief length %d, want %d", len(initial), n)
	}
	if !initial.IsDistribution() {
		return fmt.Errorf("sim: initial belief %v is not a distribution", initial)
	}
	if len(f.belief) != n {
		f.belief = make(pomdp.Belief, n)
	}
	if len(f.spare) != n {
		f.spare = make(pomdp.Belief, n)
	}
	copy(f.belief, initial)
	return nil
}

// Observe implements stepObserver with the same Bayes update (and therefore
// bit-identical belief trajectories) as the controllers' tracker.
func (f *beliefFilter) Observe(action, obs int) error {
	next, err := f.p.UpdateInto(f.sc, f.spare, f.belief, action, obs)
	if err != nil {
		return err
	}
	f.belief, f.spare = next, f.belief
	return nil
}

// batchEpisode is one live episode of a batched campaign worker. Episode
// objects are arena-recycled across the campaign: the RNG stream is reseeded
// in place (rng.Stream.SplitNInto) and the belief filter stays attached, so
// the steady state of a batched campaign starts episodes without allocating.
type batchEpisode struct {
	index  int // campaign episode index (RNG stream and fold order)
	fault  int
	state  int
	stream *rng.Stream
	flt    *beliefFilter
	res    EpisodeResult
}

// doneEpisode is a completed episode's result held by value until the
// index-ordered fold, so the batchEpisode object can be recycled the moment
// the episode terminates.
type doneEpisode struct {
	index int
	res   EpisodeResult
}

// runWorkerBatched is runWorker's batched-stepping twin: it keeps up to
// opts.BatchSize episodes of worker w's stripe live at once and advances
// all of them with one BatchDecider call per round. Episode trajectories
// are bit-identical to sequential stepping — per-episode RNG streams are
// derived the same way, the belief filters perform the same updates, and
// DecideBatch is contractually bit-identical to Decide — and the completed
// episodes are folded into the aggregate in episode-index order, so the
// resulting CampaignResult (wall-clock AlgoTime aside) is exactly the
// sequential worker's.
//
// Error semantics also mirror the sequential worker: with ContinueOnError
// every failing episode is counted Abandoned; otherwise the failure with
// the smallest episode index wins (that is the one the sequential loop
// would have hit), episodes before it drain to completion and are folded,
// and episodes after it are discarded as never-run. The one necessarily
// coarser case is a DecideBatch error, which cannot be attributed to a
// single episode and fails every episode live at that moment.
func (r *Runner) runWorkerBatched(w, workers int, ctrl controller.Controller, initial pomdp.Belief, faultStates []int, episodes int, stream *rng.Stream, opts CampaignOptions) (CampaignResult, error) {
	var out CampaignResult
	p := r.rm.POMDP
	bd := opts.BatchDecider
	if bd == nil {
		bd, _ = ctrl.(controller.BatchDecider)
	}
	if bd == nil {
		return out, fmt.Errorf("sim: batched stepping needs a controller.BatchDecider (set CampaignOptions.BatchDecider or use a batch-capable controller)")
	}
	// The belief filters must track the decider's state space, not the
	// simulated base model: the Section 3.1 transforms append termination
	// states, so the decider's model is usually wider. Base action and
	// observation indices coincide (the transforms guarantee it), which is
	// what lets the base-model simulator feed a transformed-model filter.
	fp := p
	if m, ok := bd.(interface{ Model() *pomdp.POMDP }); ok && m.Model() != nil {
		fp = m.Model()
	}
	if len(initial) != fp.NumStates() {
		return out, fmt.Errorf("sim: initial belief length %d does not match the batch decider's %d-state model", len(initial), fp.NumStates())
	}
	name := "batched"
	if n, ok := bd.(interface{ Name() string }); ok {
		name = n.Name()
	} else if ctrl != nil {
		name = ctrl.Name()
	}
	out.Name = name

	// Batched decision-stat collection, resolved once per worker.
	var bss controller.BatchStatsSource
	if s, ok := bd.(controller.BatchStatsSource); ok && s.StatsEnabled() {
		bss = s
	}

	batch := opts.BatchSize
	obsAction := r.rm.MonitorAction
	// One update scratch shared by every filter of this worker's stripe.
	filterScratch := pomdp.NewScratch(fp)
	live := make([]*batchEpisode, 0, batch)
	completed := make([]doneEpisode, 0, batch)
	free := make([]*batchEpisode, 0, batch)
	beliefs := make([]pomdp.Belief, 0, batch)
	decisions := make([]controller.Decision, batch)
	next := w // next episode index of this worker's stripe
	fatalIdx, fatalErr := -1, error(nil)

	// fail records one episode's failure with the sequential worker's
	// semantics: Abandoned under ContinueOnError, else the smallest-index
	// failure becomes the campaign error.
	fail := func(e *batchEpisode, err error) {
		err = fmt.Errorf("sim: episode %d (fault %s): %w", e.index, p.M.StateName(e.fault), err)
		if opts.ContinueOnError {
			out.Abandoned++
			return
		}
		if fatalIdx < 0 || e.index < fatalIdx {
			fatalIdx, fatalErr = e.index, err
		}
	}
	// release returns the episode object (with its stream and filter) to
	// the arena for the next start to reuse.
	release := func(e *batchEpisode) {
		free = append(free, e)
	}

	// start refills the live set from the stripe: derive the episode
	// stream, inject the fault, reset a filter, and run the initial
	// detection sweep — exactly RunEpisode's preamble. Recycled episode
	// objects reseed their stream in place, so the steady state allocates
	// nothing per episode.
	start := func() {
		for len(live) < batch && next < episodes && fatalIdx < 0 {
			i := next
			next += workers
			var e *batchEpisode
			if len(free) > 0 {
				e = free[len(free)-1]
				free = free[:len(free)-1]
			} else {
				e = &batchEpisode{}
			}
			e.stream = stream.SplitNInto(e.stream, "episode", i)
			fault := faultStates[e.stream.IntN(len(faultStates))]
			e.index, e.fault, e.state = i, fault, fault
			e.res = EpisodeResult{Injected: fault}
			if fault < 0 || fault >= p.NumStates() {
				fail(e, fmt.Errorf("sim: fault state %d out of range [0,%d)", fault, p.NumStates()))
				release(e)
				continue
			}
			if e.flt == nil {
				e.flt = newBeliefFilter(fp, filterScratch, name)
			}
			if err := e.flt.Reset(initial); err != nil {
				fail(e, fmt.Errorf("sim: reset %s: %w", name, err))
				release(e)
				continue
			}
			st, err := r.step(e.flt, &e.res, e.state, obsAction, e.stream)
			if err != nil {
				fail(e, err)
				release(e)
				continue
			}
			e.state = st
			e.res.Steps = 1
			live = append(live, e)
		}
	}

	for {
		start()
		if len(live) == 0 {
			break
		}
		// Step-budget sweep (the sequential loop's condition), plus
		// discarding episodes a recorded fatal failure proves the
		// sequential loop would never have started.
		kept := live[:0]
		for _, e := range live {
			if fatalIdx >= 0 && e.index > fatalIdx {
				release(e)
				continue
			}
			if e.res.Steps > r.maxStep {
				fail(e, fmt.Errorf("sim: %s after %d steps: %w", name, r.maxStep, ErrTimedOut))
				release(e)
				continue
			}
			kept = append(kept, e)
		}
		live = kept
		if len(live) == 0 {
			continue
		}

		beliefs = beliefs[:0]
		for _, e := range live {
			beliefs = append(beliefs, e.flt.belief)
		}
		t0 := time.Now()
		err := bd.DecideBatch(beliefs, decisions[:len(live)])
		elapsed := time.Since(t0)
		share := elapsed / time.Duration(len(live))
		for _, e := range live {
			e.res.AlgoTime += share
		}
		if err != nil {
			derr := fmt.Errorf("sim: %s decide: %w", name, err)
			for _, e := range live {
				fail(e, derr)
				release(e)
			}
			live = live[:0]
			continue
		}
		if bss != nil {
			sts := bss.BatchDecisionStats()
			for k, e := range live {
				e.res.addStats(sts[k])
			}
		}

		kept = live[:0]
		for k, e := range live {
			d := decisions[k]
			switch {
			case d.Terminate:
				e.res.Recovered = r.isNull[e.state]
				completed = append(completed, doneEpisode{index: e.index, res: e.res})
				release(e)
			case d.Action < 0 || d.Action >= p.NumActions():
				fail(e, fmt.Errorf("sim: %s chose invalid action %d", name, d.Action))
				release(e)
			default:
				if d.Action != obsAction {
					e.res.Actions++
				}
				st, err := r.step(e.flt, &e.res, e.state, d.Action, e.stream)
				if err != nil {
					fail(e, err)
					release(e)
					continue
				}
				e.state = st
				e.res.Steps++
				kept = append(kept, e)
			}
		}
		live = kept
	}

	// Fold completed episodes in episode-index order — the accumulator is
	// floating-point-order sensitive, and index order is the sequential
	// worker's fold order.
	sort.Slice(completed, func(i, j int) bool { return completed[i].index < completed[j].index })
	for i := range completed {
		if fatalIdx >= 0 && completed[i].index > fatalIdx {
			continue
		}
		out.add(completed[i].res)
	}
	return out, fatalErr
}
