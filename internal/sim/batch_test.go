package sim

import (
	"reflect"
	"strings"
	"testing"

	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
)

// boundedFactory builds an independent Bounded controller per call from its
// own Prepared (bootstrap included), so batched and sequential campaigns in
// the equality tests never share a bound set.
func boundedFactory(t *testing.T, rm *core.RecoveryModel) func() (controller.Controller, pomdp.Belief, error) {
	t.Helper()
	return func() (controller.Controller, pomdp.Belief, error) {
		ctrl, initial := preparedBounded(t, rm)
		return ctrl, initial, nil
	}
}

// TestBatchedCampaignMatchesSequential is the tentpole equality test: the
// batched stepping mode must reproduce the sequential campaign bit-for-bit
// (AlgoTimeMs aside — it folds wall-clock durations). Twin controllers are
// prepared identically so online counter bumps cannot couple the two runs.
func TestBatchedCampaignMatchesSequential(t *testing.T) {
	rm, _ := twoServerRecovery(t)
	runner, err := NewRunner(rm, 500)
	if err != nil {
		t.Fatal(err)
	}
	faults := []int{1, 2}
	const episodes = 64

	seqCtrl, seqInitial := preparedBounded(t, rm)
	seq, err := runner.RunCampaignOpts(seqCtrl, seqInitial, faults, episodes, rng.New(41), CampaignOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	for _, batch := range []int{1, 4, 16, episodes + 7} {
		batCtrl, batInitial := preparedBounded(t, rm)
		bat, err := runner.RunCampaignOpts(batCtrl, batInitial, faults, episodes, rng.New(41), CampaignOptions{
			Workers: 1, BatchSize: batch,
		})
		if err != nil {
			t.Fatalf("batch size %d: %v", batch, err)
		}
		a, b := seq, bat
		a.AlgoTimeMs, b.AlgoTimeMs = statsAcc{}, statsAcc{}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("batch size %d diverges from sequential:\nseq:     %+v\nbatched: %+v", batch, a, b)
		}
	}
}

// TestBatchedCampaignParallelWorkers pins batched-vs-plain equality at
// Workers > 1: each worker gets its own batch-capable Bounded from the
// WorkerFactory, and the merged statistics must match the non-batched
// campaign at the same worker count.
func TestBatchedCampaignParallelWorkers(t *testing.T) {
	rm, _ := twoServerRecovery(t)
	runner, err := NewRunner(rm, 500)
	if err != nil {
		t.Fatal(err)
	}
	faults := []int{1, 2}
	const episodes = 48

	run := func(batch int) CampaignResult {
		res, err := runner.RunCampaignOpts(nil, nil, faults, episodes, rng.New(53), CampaignOptions{
			Workers: 2, WorkerFactory: boundedFactory(t, rm), BatchSize: batch,
		})
		if err != nil {
			t.Fatalf("batch size %d: %v", batch, err)
		}
		res.AlgoTimeMs = statsAcc{}
		return res
	}
	plain, batched := run(0), run(8)
	if !reflect.DeepEqual(plain, batched) {
		t.Errorf("workers=2 batched diverges from plain:\nplain:   %+v\nbatched: %+v", plain, batched)
	}
}

// TestBatchedCampaignDeterministic: same seed, same options — identical
// results across reruns.
func TestBatchedCampaignDeterministic(t *testing.T) {
	rm, _ := twoServerRecovery(t)
	runner, err := NewRunner(rm, 500)
	if err != nil {
		t.Fatal(err)
	}
	run := func() CampaignResult {
		ctrl, initial := preparedBounded(t, rm)
		res, err := runner.RunCampaignOpts(ctrl, initial, []int{1, 2}, 40, rng.New(67), CampaignOptions{
			Workers: 1, BatchSize: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		res.AlgoTimeMs = statsAcc{}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("batched campaigns with the same seed differ:\na: %+v\nb: %+v", a, b)
	}
}

// TestBatchedCampaignTimeoutParity: with a step budget small enough to trip,
// batched and sequential campaigns must abandon the same episodes.
func TestBatchedCampaignTimeoutParity(t *testing.T) {
	rm, _ := twoServerRecovery(t)
	runner, err := NewRunner(rm, 3)
	if err != nil {
		t.Fatal(err)
	}
	faults := []int{1, 2}
	const episodes = 32
	opts := CampaignOptions{Workers: 1, ContinueOnError: true}

	seqCtrl, seqInitial := preparedBounded(t, rm)
	seq, err := runner.RunCampaignOpts(seqCtrl, seqInitial, faults, episodes, rng.New(71), opts)
	if err != nil {
		t.Fatal(err)
	}
	batCtrl, batInitial := preparedBounded(t, rm)
	opts.BatchSize = 8
	bat, err := runner.RunCampaignOpts(batCtrl, batInitial, faults, episodes, rng.New(71), opts)
	if err != nil {
		t.Fatal(err)
	}
	seq.AlgoTimeMs, bat.AlgoTimeMs = statsAcc{}, statsAcc{}
	if !reflect.DeepEqual(seq, bat) {
		t.Errorf("timeout parity broken:\nseq:     %+v\nbatched: %+v", seq, bat)
	}
	if bat.Abandoned == 0 {
		t.Error("step budget 3 abandoned no episodes; the test exercises nothing")
	}
}

// TestBatchedCampaignFatalErrorParity: without ContinueOnError, a timeout
// mid-campaign must surface the same smallest-index failure as the
// sequential loop, with exactly the episodes before it folded.
func TestBatchedCampaignFatalErrorParity(t *testing.T) {
	rm, _ := twoServerRecovery(t)
	runner, err := NewRunner(rm, 3)
	if err != nil {
		t.Fatal(err)
	}
	faults := []int{1, 2}
	const episodes = 32

	seqCtrl, seqInitial := preparedBounded(t, rm)
	seq, seqErr := runner.RunCampaignOpts(seqCtrl, seqInitial, faults, episodes, rng.New(71), CampaignOptions{Workers: 1})
	if seqErr == nil {
		t.Fatal("step budget 3 produced no sequential error; the test exercises nothing")
	}
	batCtrl, batInitial := preparedBounded(t, rm)
	bat, batErr := runner.RunCampaignOpts(batCtrl, batInitial, faults, episodes, rng.New(71), CampaignOptions{
		Workers: 1, BatchSize: 8,
	})
	if batErr == nil {
		t.Fatal("batched campaign missed the sequential failure")
	}
	if seqErr.Error() != batErr.Error() {
		t.Errorf("fatal errors differ:\nseq:     %v\nbatched: %v", seqErr, batErr)
	}
	seq.AlgoTimeMs, bat.AlgoTimeMs = statsAcc{}, statsAcc{}
	if !reflect.DeepEqual(seq, bat) {
		t.Errorf("partial results differ on fatal error:\nseq:     %+v\nbatched: %+v", seq, bat)
	}
}

func TestAutoWorkers(t *testing.T) {
	cases := []struct{ episodes, procs, want int }{
		{1, 8, 1},
		{3, 8, 1},
		{4, 8, 1},
		{8, 8, 2},
		{40, 8, 8},
		{40, 4, 4},
		{1000, 16, 16},
		{2, 1, 1},
	}
	for _, c := range cases {
		if got := autoWorkers(c.episodes, c.procs); got != c.want {
			t.Errorf("autoWorkers(%d, %d) = %d, want %d", c.episodes, c.procs, got, c.want)
		}
	}
}

// TestAutoWorkersOnlyWithFactory: Workers == 0 with just a shared controller
// must stay sequential (a shared controller cannot be parallelized), and the
// result must equal the explicit Workers: 1 run.
func TestAutoWorkersOnlyWithFactory(t *testing.T) {
	rm, _ := twoServerRecovery(t)
	runner, err := NewRunner(rm, 500)
	if err != nil {
		t.Fatal(err)
	}
	run := func(opts CampaignOptions) CampaignResult {
		ctrl, initial := preparedBounded(t, rm)
		res, err := runner.RunCampaignOpts(ctrl, initial, []int{1, 2}, 40, rng.New(5), opts)
		if err != nil {
			t.Fatal(err)
		}
		res.AlgoTimeMs = statsAcc{}
		return res
	}
	auto, pinned := run(CampaignOptions{}), run(CampaignOptions{Workers: 1})
	if !reflect.DeepEqual(auto, pinned) {
		t.Errorf("Workers=0 without a factory is not the sequential campaign:\nauto:   %+v\npinned: %+v", auto, pinned)
	}
}

func TestBatchOptionValidation(t *testing.T) {
	rm, ts := twoServerRecovery(t)
	runner, err := NewRunner(rm, 500)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, initial := preparedBounded(t, rm)
	uniform := pomdp.UniformBelief(3)
	_ = uniform

	cases := []struct {
		name string
		opts CampaignOptions
		want string
	}{
		{"negative batch", CampaignOptions{BatchSize: -1}, "negative batch size"},
		{"episode factory", CampaignOptions{BatchSize: 4, EpisodeFactory: func(int) (controller.Controller, func(error), error) {
			return ctrl, nil, nil
		}}, "incompatible with EpisodeFactory"},
		{"decider without size", CampaignOptions{BatchDecider: ctrl}, "without a positive BatchSize"},
		{"shared decider parallel", CampaignOptions{BatchSize: 4, BatchDecider: ctrl, Workers: 3}, "shared batch decider"},
	}
	for _, c := range cases {
		_, err := runner.RunCampaignOpts(ctrl, initial, []int{1, 2}, 20, rng.New(1), c.opts)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.want)
		}
	}

	// A batch-incapable controller with BatchSize set must be rejected with
	// a pointer at the fix, not crash.
	ml, err := controller.NewMostLikely(ts.Model, controller.MostLikelyConfig{
		NullStates: ts.NullStates, TerminationProbability: 0.999,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = runner.RunCampaignOpts(ml, uniform, []int{1, 2}, 20, rng.New(1), CampaignOptions{BatchSize: 4})
	if err == nil || !strings.Contains(err.Error(), "needs a controller.BatchDecider") {
		t.Errorf("batch-incapable controller: got %v", err)
	}
}
