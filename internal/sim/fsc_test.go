package sim

import (
	"fmt"
	"reflect"
	"testing"

	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/emn"
	"bpomdp/internal/linalg"
	"bpomdp/internal/modelload"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
)

// emnPrepared builds one independently bootstrapped Prepared over the EMN
// model. Twin calls with the same seed produce bit-identical bound sets, so
// an FSC compiled from one is exact with respect to the other's tree.
func emnPrepared(t *testing.T, rm *core.RecoveryModel) *core.Prepared {
	t.Helper()
	prep, err := core.Prepare(rm, core.PrepareOptions{OperatorResponseTime: emn.OperatorResponseTime})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prep.Bootstrap(10, controller.VariantAverage, 2, rng.New(7)); err != nil {
		t.Fatal(err)
	}
	return prep
}

// TestFSCCampaignMatchesTreeEMN is the acceptance equality test on the
// paper's EMN model: a campaign decided by the tiered FSC decider must
// reproduce the plain tree campaign bit-for-bit — mean cost included — at
// the strictest gap threshold (per-decision parity by construction) and at a
// threshold wide enough to serve every compiled node. Sets are frozen
// (ImproveOnline off), so the table is an amortization of the tree.
func TestFSCCampaignMatchesTreeEMN(t *testing.T) {
	rm, err := modelload.Load("emn")
	if err != nil {
		t.Fatal(err)
	}
	runner, err := NewRunner(rm, 1000)
	if err != nil {
		t.Fatal(err)
	}
	faults := rm.FaultStates()
	const episodes = 24

	treePrep := emnPrepared(t, rm)
	treeCtrl, err := treePrep.NewController(core.ControllerConfig{Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	initial, err := treePrep.InitialBelief()
	if err != nil {
		t.Fatal(err)
	}
	tree, err := runner.RunCampaignOpts(treeCtrl, initial, faults, episodes, rng.New(101), CampaignOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	fscPrep := emnPrepared(t, rm)
	fsc, err := fscPrep.CompileFSC(core.FSCConfig{Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, threshold := range []float64{0, fsc.MaxGap() + 1} {
		dec, err := fscPrep.NewFSCDecider(fsc, core.ControllerConfig{Depth: 1}, threshold)
		if err != nil {
			t.Fatal(err)
		}
		fscInitial, err := fscPrep.InitialBelief()
		if err != nil {
			t.Fatal(err)
		}
		got, err := runner.RunCampaignOpts(dec, fscInitial, faults, episodes, rng.New(101), CampaignOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if got.Cost.Mean() != tree.Cost.Mean() {
			t.Errorf("threshold %v: fsc campaign mean cost %v, tree %v", threshold, got.Cost.Mean(), tree.Cost.Mean())
		}
		a, b := tree, got
		a.Name, b.Name = "", ""
		a.AlgoTimeMs, b.AlgoTimeMs = statsAcc{}, statsAcc{}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("threshold %v: fsc campaign diverges from tree:\ntree: %+v\nfsc:  %+v", threshold, a, b)
		}
	}
	if fsc.Hits() == 0 {
		t.Error("EMN campaigns never hit the compiled table")
	}
}

// TestFSCBatchedCampaignMatchesTreeEMN runs the FSC tier through the batched
// campaign engine (the FSCDecider is the shared BatchDecider) and pins
// equality with the sequential tree campaign, plus the per-tier decision
// split the campaign aggregates with stats enabled.
func TestFSCBatchedCampaignMatchesTreeEMN(t *testing.T) {
	rm, err := modelload.Load("emn")
	if err != nil {
		t.Fatal(err)
	}
	runner, err := NewRunner(rm, 1000)
	if err != nil {
		t.Fatal(err)
	}
	faults := rm.FaultStates()
	const episodes = 24

	treePrep := emnPrepared(t, rm)
	treeCtrl, err := treePrep.NewController(core.ControllerConfig{Depth: 1, CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	initial, err := treePrep.InitialBelief()
	if err != nil {
		t.Fatal(err)
	}
	tree, err := runner.RunCampaignOpts(treeCtrl, initial, faults, episodes, rng.New(131), CampaignOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.FSCDecisions != 0 || tree.TreeDecisions != tree.Decisions {
		t.Errorf("tree campaign tier split %d fsc / %d tree of %d decisions; want all tree",
			tree.FSCDecisions, tree.TreeDecisions, tree.Decisions)
	}

	fscPrep := emnPrepared(t, rm)
	fsc, err := fscPrep.CompileFSC(core.FSCConfig{Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := fscPrep.NewFSCDecider(fsc, core.ControllerConfig{Depth: 1, CollectStats: true}, fsc.MaxGap()+1)
	if err != nil {
		t.Fatal(err)
	}
	fscInitial, err := fscPrep.InitialBelief()
	if err != nil {
		t.Fatal(err)
	}
	got, err := runner.RunCampaignOpts(dec, fscInitial, faults, episodes, rng.New(131), CampaignOptions{
		Workers: 1, BatchSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.FSCDecisions == 0 {
		t.Error("batched FSC campaign served no table hits")
	}
	if got.FSCDecisions+got.TreeDecisions != got.Decisions {
		t.Errorf("tier split %d+%d does not cover %d decisions", got.FSCDecisions, got.TreeDecisions, got.Decisions)
	}
	if got.Cost.Mean() != tree.Cost.Mean() {
		t.Errorf("batched fsc campaign mean cost %v, tree %v", got.Cost.Mean(), tree.Cost.Mean())
	}
	// Work counters and tier splits legitimately differ between the tiers
	// (table hits expand no tree); the trajectory-determined aggregates must
	// not.
	a, b := tree, got
	a.Name, b.Name = "", ""
	a.AlgoTimeMs, b.AlgoTimeMs = statsAcc{}, statsAcc{}
	a.TreeNodes, b.TreeNodes = 0, 0
	a.LeafEvals, b.LeafEvals = 0, 0
	a.SlabPasses, b.SlabPasses = 0, 0
	a.FSCDecisions, b.FSCDecisions = 0, 0
	a.TreeDecisions, b.TreeDecisions = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Errorf("batched fsc campaign diverges from tree:\ntree: %+v\nfsc:  %+v", a, b)
	}
}

// randomRecoveryBase generates a random base recovery model satisfying
// Conditions 1 and 2 (the same family as the bounds package's generative
// tests), plus an explicit passive observe action so it can be wrapped in a
// RecoveryModel and simulated.
func randomRecoveryBase(t *testing.T, r *rng.Stream, nStates, nActions, nObs int) *core.RecoveryModel {
	t.Helper()
	b := pomdp.NewBuilder()
	name := func(s int) string {
		if s == 0 {
			return "null"
		}
		return fmt.Sprintf("fault%d", s)
	}
	for s := 0; s < nStates; s++ {
		b.State(name(s))
	}
	for a := 0; a < nActions; a++ {
		action := fmt.Sprintf("act%d", a)
		for s := 0; s < nStates; s++ {
			if s == 0 {
				b.Transition(name(s), action, name(s), 1)
			} else if a == s%nActions || a == 0 {
				pFix := 0.5 + 0.5*r.Float64()
				b.Transition(name(s), action, name(0), pFix)
				if pFix < 1 {
					b.Transition(name(s), action, name(s), 1-pFix)
				}
			} else {
				b.Transition(name(s), action, name(s), 1)
			}
			cost := -0.1 - r.Float64()
			if s == 0 {
				cost = -0.05
			}
			b.Reward(name(s), action, cost)
		}
	}
	// The passive monitor: identity transitions, a small sweep cost.
	for s := 0; s < nStates; s++ {
		b.Transition(name(s), "observe", name(s), 1)
		b.Reward(name(s), "observe", -0.01)
	}
	// Noisy per-state observation signatures under every action.
	for a := 0; a <= nActions; a++ {
		action := fmt.Sprintf("act%d", a)
		if a == nActions {
			action = "observe"
		}
		for s := 0; s < nStates; s++ {
			b.Observe(name(s), action, fmt.Sprintf("obs%d", s%nObs), 0.7)
			b.Observe(name(s), action, fmt.Sprintf("obs%d", (s+1)%nObs), 0.3)
		}
	}
	base, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rates := linalg.NewVector(nStates)
	for s := 1; s < nStates; s++ {
		rates[s] = -0.2 - r.Float64()
	}
	durations := make([]float64, base.NumActions())
	for a := 0; a < nActions; a++ {
		durations[a] = 0.5 + r.Float64()
	}
	rm := &core.RecoveryModel{
		POMDP:           base,
		NullStates:      []int{0},
		RateRewards:     rates,
		Durations:       durations,
		MonitorAction:   b.Action("observe"),
		MonitorDuration: 0.1,
	}
	if err := rm.Validate(); err != nil {
		t.Fatal(err)
	}
	return rm
}

// TestFSCCampaignPropertyRandomModels is the generative property test: for
// random recovery models, a campaign decided by the compiled FSC (with tree
// fallback) must produce exactly the tree campaign's mean cost, at the
// strict and the permissive gap threshold.
func TestFSCCampaignPropertyRandomModels(t *testing.T) {
	root := rng.New(4242)
	for trial := 0; trial < 8; trial++ {
		r := root.SplitN("model", trial)
		nStates := 3 + r.IntN(4)
		nActions := 2 + r.IntN(3)
		nObs := 2 + r.IntN(3)
		rm := randomRecoveryBase(t, r, nStates, nActions, nObs)
		runner, err := NewRunner(rm, 500)
		if err != nil {
			t.Fatal(err)
		}
		faults := rm.FaultStates()
		const episodes = 16

		prepare := func() *core.Prepared {
			prep, err := core.Prepare(rm, core.PrepareOptions{OperatorResponseTime: 5})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := prep.Bootstrap(5, controller.VariantAverage, 1, rng.New(uint64(900+trial))); err != nil {
				t.Fatal(err)
			}
			return prep
		}
		treePrep := prepare()
		treeCtrl, err := treePrep.NewController(core.ControllerConfig{Depth: 1})
		if err != nil {
			t.Fatal(err)
		}
		initial, err := treePrep.InitialBelief()
		if err != nil {
			t.Fatal(err)
		}
		seed := uint64(300 + trial)
		tree, err := runner.RunCampaignOpts(treeCtrl, initial, faults, episodes, rng.New(seed), CampaignOptions{Workers: 1})
		if err != nil {
			t.Fatalf("trial %d: tree campaign: %v", trial, err)
		}

		fscPrep := prepare()
		fsc, err := fscPrep.CompileFSC(core.FSCConfig{Depth: 1})
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		for _, threshold := range []float64{0, fsc.MaxGap() + 1} {
			dec, err := fscPrep.NewFSCDecider(fsc, core.ControllerConfig{Depth: 1}, threshold)
			if err != nil {
				t.Fatal(err)
			}
			fscInitial, err := fscPrep.InitialBelief()
			if err != nil {
				t.Fatal(err)
			}
			got, err := runner.RunCampaignOpts(dec, fscInitial, faults, episodes, rng.New(seed), CampaignOptions{Workers: 1})
			if err != nil {
				t.Fatalf("trial %d threshold %v: fsc campaign: %v", trial, threshold, err)
			}
			if got.Cost.Mean() != tree.Cost.Mean() {
				t.Errorf("trial %d (%d states, %d actions) threshold %v: fsc mean cost %v, tree %v",
					trial, nStates, nActions, threshold, got.Cost.Mean(), tree.Cost.Mean())
			}
			if got.Recovered != tree.Recovered || got.Episodes != tree.Episodes {
				t.Errorf("trial %d threshold %v: outcome split diverges: fsc %d/%d, tree %d/%d",
					trial, threshold, got.Recovered, got.Episodes, tree.Recovered, tree.Episodes)
			}
		}
	}
}
