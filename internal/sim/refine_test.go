package sim

import (
	"reflect"
	"testing"

	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/modelload"
	"bpomdp/internal/rng"
)

// TestRefinedBoundsCampaignEMN is the acceptance test for HSVI bound
// refinement on the paper's EMN model. It pins four facts:
//
//  1. Refinement never hurts: the refined-bounds tree campaign's mean cost
//     is no worse (here: costs are negative rewards, so no larger) than the
//     seed-bounds campaign's. On EMN the tighter bounds actually improve the
//     policy, so strict equality with the seed is NOT the contract — the
//     parity contract is (2).
//  2. Exact parity between tree and table at refined bounds: a tiered FSC
//     campaign at the strictest threshold reproduces the refined tree
//     campaign bit-for-bit (mean cost included), exactly as the seed-bounds
//     FSC tests pin. Refinement changes the bounds, never the tier contract.
//  3. Refinement shrinks tree work: at threshold 0 the refined-bounds tiered
//     campaign expands strictly fewer tree nodes per decision than the
//     seed-bounds one — compile-time gaps collapse, so table hits dominate.
//  4. The refined compiled FSC is fully servable: every node's gap is ~0.
func TestRefinedBoundsCampaignEMN(t *testing.T) {
	rm, err := modelload.Load("emn")
	if err != nil {
		t.Fatal(err)
	}
	runner, err := NewRunner(rm, 1000)
	if err != nil {
		t.Fatal(err)
	}
	faults := rm.FaultStates()
	const episodes = 24

	runTree := func(prep *core.Prepared) CampaignResult {
		t.Helper()
		ctrl, err := prep.NewController(core.ControllerConfig{Depth: 1})
		if err != nil {
			t.Fatal(err)
		}
		initial, err := prep.InitialBelief()
		if err != nil {
			t.Fatal(err)
		}
		res, err := runner.RunCampaignOpts(ctrl, initial, faults, episodes, rng.New(101), CampaignOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	runTiered := func(prep *core.Prepared) (CampaignResult, *controller.FSC) {
		t.Helper()
		fsc, err := prep.CompileFSC(core.FSCConfig{Depth: 1})
		if err != nil {
			t.Fatal(err)
		}
		dec, err := prep.NewFSCDecider(fsc, core.ControllerConfig{Depth: 1, CollectStats: true}, 0)
		if err != nil {
			t.Fatal(err)
		}
		initial, err := prep.InitialBelief()
		if err != nil {
			t.Fatal(err)
		}
		res, err := runner.RunCampaignOpts(dec, initial, faults, episodes, rng.New(101), CampaignOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		return res, fsc
	}
	refine := func(prep *core.Prepared) {
		t.Helper()
		rep, err := prep.RefineBounds(core.RefineConfig{Epsilon: 1e-6, MaxTrials: 512, MaxDepth: 64})
		if err != nil {
			t.Fatalf("refine: %v (report %+v)", err, rep)
		}
		if !rep.Converged {
			t.Fatalf("refinement did not converge on EMN: %+v", rep)
		}
		if rep.FinalGap > 1e-6 {
			t.Fatalf("refined root gap %v above epsilon", rep.FinalGap)
		}
		if rep.FinalGap > rep.InitialGap {
			t.Fatalf("refinement widened the root gap: %v -> %v", rep.InitialGap, rep.FinalGap)
		}
	}

	// (1) Refined tree campaign is no worse than the seed tree campaign.
	seedTree := runTree(emnPrepared(t, rm))
	refinedPrep := emnPrepared(t, rm)
	refine(refinedPrep)
	refinedTree := runTree(refinedPrep)
	if refinedTree.Cost.Mean() > seedTree.Cost.Mean() {
		t.Errorf("refined bounds worsened EMN mean cost: seed %v, refined %v",
			seedTree.Cost.Mean(), refinedTree.Cost.Mean())
	}

	// (2) Tiered campaign at refined bounds is bit-exact with the refined
	// tree campaign. Twin bootstraps are bit-identical, so a second refined
	// Prepared compiles an FSC exact with respect to the first's tree.
	tieredPrep := emnPrepared(t, rm)
	refine(tieredPrep)
	refinedTiered, refinedFSC := runTiered(tieredPrep)
	if refinedTiered.Cost.Mean() != refinedTree.Cost.Mean() {
		t.Errorf("refined tiered mean cost %v, refined tree %v",
			refinedTiered.Cost.Mean(), refinedTree.Cost.Mean())
	}
	a, b := refinedTree, refinedTiered
	a.Name, b.Name = "", ""
	a.AlgoTimeMs, b.AlgoTimeMs = statsAcc{}, statsAcc{}
	// Work counters and tier splits legitimately differ (table hits expand no
	// tree, and the tree campaign above ran without stats); the
	// trajectory-determined aggregates must not.
	a.Decisions, b.Decisions = 0, 0
	a.TreeNodes, b.TreeNodes = 0, 0
	a.LeafEvals, b.LeafEvals = 0, 0
	a.SlabPasses, b.SlabPasses = 0, 0
	a.BoundGap, b.BoundGap = statsAcc{}, statsAcc{}
	a.BeliefEntropy, b.BeliefEntropy = statsAcc{}, statsAcc{}
	a.FSCDecisions, b.FSCDecisions = 0, 0
	a.TreeDecisions, b.TreeDecisions = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Errorf("refined tiered campaign diverges from refined tree:\ntree:   %+v\ntiered: %+v", a, b)
	}

	// (3) Strictly less tree work per decision than the seed-bounds tier at
	// the same threshold.
	seedTiered, seedFSC := runTiered(emnPrepared(t, rm))
	if seedTiered.Decisions == 0 || refinedTiered.Decisions == 0 {
		t.Fatal("campaign made no decisions")
	}
	seedWork := float64(seedTiered.TreeNodes) / float64(seedTiered.Decisions)
	refinedWork := float64(refinedTiered.TreeNodes) / float64(refinedTiered.Decisions)
	if refinedWork >= seedWork {
		t.Errorf("refined bounds did not reduce tree work: %v nodes/decision vs seed %v",
			refinedWork, seedWork)
	}

	// (4) Refinement collapses compile-time gaps: the refined FSC is fully
	// servable at (near-)zero threshold, where the seed FSC is not.
	if refinedFSC.MaxGap() > 1e-9 {
		t.Errorf("refined FSC max gap %v; want ~0 (all nodes servable)", refinedFSC.MaxGap())
	}
	if seedFSC.MaxGap() <= 1e-9 {
		t.Logf("note: seed FSC max gap %v already ~0; work comparison is vacuous", seedFSC.MaxGap())
	}
	if refinedTiered.FSCDecisions == 0 {
		t.Error("refined tiered campaign served no table hits at threshold 0")
	}
}
