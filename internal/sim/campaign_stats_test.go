package sim

import (
	"math"
	"testing"

	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
)

// statsBounded builds an independent stats-collecting Bounded controller.
func statsBounded(t *testing.T, rm *core.RecoveryModel) (*controller.Bounded, pomdp.Belief) {
	t.Helper()
	prep, err := core.Prepare(rm, core.PrepareOptions{OperatorResponseTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := prep.NewController(core.ControllerConfig{Depth: 1, CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	initial, err := prep.InitialBelief()
	if err != nil {
		t.Fatal(err)
	}
	return ctrl, initial
}

// TestCampaignAggregatesDecisionStats: a campaign over stats-collecting
// controllers must surface decision totals and sane bound-gap / entropy
// summaries, and a campaign over plain controllers must leave them zero.
func TestCampaignAggregatesDecisionStats(t *testing.T) {
	rm, _ := twoServerRecovery(t)
	runner, err := NewRunner(rm, 500)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, initial := statsBounded(t, rm)
	res, err := runner.RunCampaign(ctrl, initial, []int{1, 2}, 32, rng.New(83))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decisions == 0 {
		t.Fatal("stats-collecting campaign reported zero decisions")
	}
	if res.TreeNodes == 0 || res.LeafEvals == 0 {
		t.Errorf("work totals dead: nodes=%d leaves=%d", res.TreeNodes, res.LeafEvals)
	}
	if res.BoundGap.N() != res.Episodes || res.BeliefEntropy.N() != res.Episodes {
		t.Errorf("gap/entropy accumulators hold %d/%d samples, want %d episodes",
			res.BoundGap.N(), res.BeliefEntropy.N(), res.Episodes)
	}
	if res.BoundGap.Mean() < 0 {
		t.Errorf("mean bound gap %v < 0 violates Property 1(b)", res.BoundGap.Mean())
	}
	maxEnt := math.Log(float64(ctrl.Model().NumStates()))
	if m := res.BeliefEntropy.Mean(); m < 0 || m > maxEnt {
		t.Errorf("mean belief entropy %v outside [0, ln n = %v]", m, maxEnt)
	}

	plainCtrl, plainInitial := preparedBounded(t, rm)
	plain, err := runner.RunCampaign(plainCtrl, plainInitial, []int{1, 2}, 8, rng.New(83))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Decisions != 0 || plain.TreeNodes != 0 || plain.BoundGap.N() != 0 {
		t.Errorf("plain campaign grew decision stats: %+v", plain)
	}
}

// TestBatchedCampaignStatsMatchSequential: the batched stepping mode must
// reproduce the sequential campaign's decision-stat aggregates — exact
// work totals (the even per-batch attribution sums back to the truth) and
// bit-identical bound-gap/entropy accumulators (per-decision values are
// bit-identical and folded in the same episode order).
func TestBatchedCampaignStatsMatchSequential(t *testing.T) {
	rm, _ := twoServerRecovery(t)
	runner, err := NewRunner(rm, 500)
	if err != nil {
		t.Fatal(err)
	}
	faults := []int{1, 2}
	const episodes = 48

	seqCtrl, seqInitial := statsBounded(t, rm)
	seq, err := runner.RunCampaignOpts(seqCtrl, seqInitial, faults, episodes, rng.New(89), CampaignOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	batCtrl, batInitial := statsBounded(t, rm)
	bat, err := runner.RunCampaignOpts(batCtrl, batInitial, faults, episodes, rng.New(89), CampaignOptions{
		Workers: 1, BatchSize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Decisions != bat.Decisions {
		t.Errorf("decision totals diverge: seq %d, batched %d", seq.Decisions, bat.Decisions)
	}
	if seq.TreeNodes != bat.TreeNodes {
		t.Errorf("tree-node totals diverge: seq %d, batched %d", seq.TreeNodes, bat.TreeNodes)
	}
	if seq.LeafEvals != bat.LeafEvals {
		t.Errorf("leaf-eval totals diverge: seq %d, batched %d", seq.LeafEvals, bat.LeafEvals)
	}
	if seq.BoundGap != bat.BoundGap {
		t.Errorf("bound-gap accumulators diverge:\nseq: %+v\nbat: %+v", seq.BoundGap, bat.BoundGap)
	}
	if seq.BeliefEntropy != bat.BeliefEntropy {
		t.Errorf("entropy accumulators diverge:\nseq: %+v\nbat: %+v", seq.BeliefEntropy, bat.BeliefEntropy)
	}
}
