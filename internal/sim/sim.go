// Package sim is the fault-injection simulator used for the paper's
// Section 5 evaluation: it injects faults into a simulated system governed
// by a recovery model, drives a controller through the
// detect–decide–act–observe loop, and collects the per-fault metrics of
// Table 1 (cost, recovery time, residual time, algorithm time, recovery
// actions, monitor calls).
//
// The simulator stands in for the authors' EMN testbed; like theirs, it is
// a model-driven simulation — the true system state evolves by the recovery
// model's transition function, monitor outputs are sampled from the
// observation function, and costs accrue via the reward structure (rate ×
// duration), while the controller's decision time is measured in real wall
// time.
package sim

import (
	"errors"
	"fmt"
	"time"

	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
)

// ErrTimedOut is wrapped into episode errors when a controller fails to
// terminate within the step budget.
var ErrTimedOut = errors.New("sim: controller did not terminate within step budget")

// EpisodeResult holds the per-fault metrics of one recovery episode; the
// fields mirror Table 1's columns.
type EpisodeResult struct {
	// Injected is the injected fault state.
	Injected int
	// Recovered reports whether the system was actually fault-free when the
	// controller terminated.
	Recovered bool
	// Steps is the number of decision steps (including pure observations).
	Steps int
	// Cost is the accumulated cost (dropped requests: drop rate × time),
	// i.e. the negated reward accrued on the true trajectory.
	Cost float64
	// RecoveryTime is the simulated time from fault injection to controller
	// termination, in seconds.
	RecoveryTime float64
	// ResidualTime is the simulated time the fault was actually present, in
	// seconds.
	ResidualTime float64
	// AlgoTime is the real wall-clock time the controller spent deciding.
	AlgoTime time.Duration
	// Actions is the number of recovery actions executed (restarts and
	// reboots; observations excluded).
	Actions int
	// MonitorCalls is the number of monitor sweeps performed (one follows
	// every step, including the initial detection sweep).
	MonitorCalls int

	// Decision-stat aggregates, populated only when the deciding controller
	// collects per-decision stats (controller.StatsSource with stats
	// enabled). Decisions counts the decisions covered; TreeNodes, LeafEvals
	// and SlabPasses total the Max-Avg expansion work; BoundGapSum and
	// EntropySum accumulate the Property 1(b) slack and the belief entropy
	// across decisions (divide by Decisions for per-decision means).
	Decisions   int
	TreeNodes   uint64
	LeafEvals   uint64
	SlabPasses  uint64
	BoundGapSum float64
	EntropySum  float64
	// FSCDecisions and TreeDecisions split Decisions by serving tier
	// (controller.TierFSC table hits vs controller.TierTree expansions).
	// Under a plain tree controller every decision is a TreeDecision; under
	// a tiered FSC decider TreeDecisions counts the fallbacks.
	FSCDecisions  int
	TreeDecisions int
}

// addStats folds one decision's stats into the episode aggregates.
func (res *EpisodeResult) addStats(st controller.DecisionStats) {
	res.Decisions++
	res.TreeNodes += st.TreeNodes
	res.LeafEvals += st.LeafEvals
	res.SlabPasses += st.SlabPasses
	res.BoundGapSum += st.BoundGap
	res.EntropySum += st.BeliefEntropy
	switch st.Tier {
	case controller.TierFSC:
		res.FSCDecisions++
	case controller.TierTree:
		res.TreeDecisions++
	}
}

// Runner executes recovery episodes against a recovery model's simulated
// true system.
type Runner struct {
	rm      *core.RecoveryModel
	isNull  []bool
	maxStep int
}

// NewRunner builds a Runner for the recovery model. maxSteps caps each
// episode (0 means 1000).
func NewRunner(rm *core.RecoveryModel, maxSteps int) (*Runner, error) {
	if err := rm.Validate(); err != nil {
		return nil, err
	}
	if maxSteps == 0 {
		maxSteps = 1000
	}
	if maxSteps < 1 {
		return nil, fmt.Errorf("sim: non-positive step budget %d", maxSteps)
	}
	isNull := make([]bool, rm.POMDP.NumStates())
	for _, s := range rm.NullStates {
		isNull[s] = true
	}
	return &Runner{rm: rm, isNull: isNull, maxStep: maxSteps}, nil
}

// RunEpisode injects faultState, performs the initial detection sweep, and
// drives ctrl until it terminates. initial is the controller's prior belief
// before the first monitor output (it may be sized for a transformed model
// with extra states appended after the base states; base action and
// observation indices must coincide, which the Section 3.1 transforms
// guarantee).
func (r *Runner) RunEpisode(ctrl controller.Controller, initial pomdp.Belief, faultState int, stream *rng.Stream) (EpisodeResult, error) {
	p := r.rm.POMDP
	if faultState < 0 || faultState >= p.NumStates() {
		return EpisodeResult{}, fmt.Errorf("sim: fault state %d out of range [0,%d)", faultState, p.NumStates())
	}
	res := EpisodeResult{Injected: faultState}
	if err := ctrl.Reset(initial); err != nil {
		return res, fmt.Errorf("sim: reset %s: %w", ctrl.Name(), err)
	}

	state := faultState
	obsAction := r.rm.MonitorAction

	// Decision-stat collection is decided once per episode so the hot loop
	// pays nothing when the controller does not collect (the common case).
	ss, _ := ctrl.(controller.StatsSource)
	collect := ss != nil && ss.StatsEnabled()

	// Initial detection sweep: the monitors fire once so the controller can
	// condition its uniform prior on real outputs (Section 4).
	state, err := r.step(ctrl, &res, state, obsAction, stream)
	if err != nil {
		return res, err
	}

	for res.Steps = 1; res.Steps <= r.maxStep; res.Steps++ {
		if sa, ok := ctrl.(controller.StateAware); ok {
			sa.ObserveTrueState(state)
		}
		t0 := time.Now()
		d, err := ctrl.Decide()
		res.AlgoTime += time.Since(t0)
		if err != nil {
			return res, fmt.Errorf("sim: %s decide: %w", ctrl.Name(), err)
		}
		if collect {
			res.addStats(ss.DecisionStats())
		}
		if d.Terminate {
			res.Recovered = r.isNull[state]
			return res, nil
		}
		if d.Action < 0 || d.Action >= p.NumActions() {
			return res, fmt.Errorf("sim: %s chose invalid action %d", ctrl.Name(), d.Action)
		}
		if d.Action != obsAction {
			res.Actions++
		}
		state, err = r.step(ctrl, &res, state, d.Action, stream)
		if err != nil {
			return res, err
		}
	}
	return res, fmt.Errorf("sim: %s after %d steps: %w", ctrl.Name(), r.maxStep, ErrTimedOut)
}

// stepObserver is the slice of controller.Controller the episode step needs:
// something that absorbs observations and names itself in errors. The
// batched campaign engine drives bare belief filters (the decisions come
// from a shared BatchDecider), so step cannot demand a full Controller.
type stepObserver interface {
	Observe(action, obs int) error
	Name() string
}

// step executes one action on the true system (transition + monitor sweep +
// accounting) and feeds the sampled observation to the controller.
func (r *Runner) step(ctrl stepObserver, res *EpisodeResult, state, action int, stream *rng.Stream) (int, error) {
	p := r.rm.POMDP
	dur := r.rm.Durations[action]
	tMon := r.rm.MonitorDuration

	// Cost is the negated model reward on the true trajectory; the model's
	// r(s,a) already folds in the action duration and the trailing sweep.
	res.Cost += -p.M.Reward[action][state]
	res.RecoveryTime += dur + tMon
	if !r.isNull[state] {
		res.ResidualTime += dur
	}

	next, err := r.sampleTransition(stream, state, action)
	if err != nil {
		return 0, err
	}
	if !r.isNull[next] {
		res.ResidualTime += tMon
	}
	obs, err := r.sampleObservation(stream, next, action)
	if err != nil {
		return 0, err
	}
	res.MonitorCalls++
	if err := ctrl.Observe(action, obs); err != nil {
		return 0, fmt.Errorf("sim: %s observe: %w", ctrl.Name(), err)
	}
	return next, nil
}

// sampleSparse draws an index from a sparse weight row (parallel col/val
// slices), reproducing rng.Stream.Categorical's arithmetic exactly — the
// total, the single Float64 draw, and the accumulation visit the stored
// entries in the same order a dense weight vector would visit its non-zero
// entries — without materializing the dense vector. This keeps the episode
// loop allocation-free while leaving every sampled trajectory bit-for-bit
// identical to the dense implementation it replaced.
func sampleSparse(stream *rng.Stream, cols []int, vals []float64) (int, error) {
	var total float64
	for i, w := range vals {
		if w < 0 {
			return 0, fmt.Errorf("sim: negative weight %v at index %d", w, cols[i])
		}
		total += w
	}
	if total <= 0 {
		return 0, fmt.Errorf("sim: weights sum to %v", total)
	}
	x := stream.Float64() * total
	var acc float64
	last := 0
	for i, w := range vals {
		if w == 0 {
			continue
		}
		acc += w
		last = cols[i]
		if x < acc {
			return cols[i], nil
		}
	}
	// Floating-point slack: fall back to the last positive-weight index.
	return last, nil
}

func (r *Runner) sampleTransition(stream *rng.Stream, s, a int) (int, error) {
	cols, vals := r.rm.POMDP.M.Trans[a].RowSlice(s)
	next, err := sampleSparse(stream, cols, vals)
	if err != nil {
		return 0, fmt.Errorf("sim: transition from %s under %s: %w",
			r.rm.POMDP.M.StateName(s), r.rm.POMDP.M.ActionName(a), err)
	}
	return next, nil
}

func (r *Runner) sampleObservation(stream *rng.Stream, s, a int) (int, error) {
	cols, vals := r.rm.POMDP.Obs[a].RowSlice(s)
	obs, err := sampleSparse(stream, cols, vals)
	if err != nil {
		return 0, fmt.Errorf("sim: observation in %s under %s: %w",
			r.rm.POMDP.M.StateName(s), r.rm.POMDP.M.ActionName(a), err)
	}
	return obs, nil
}
