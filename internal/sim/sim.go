// Package sim is the fault-injection simulator used for the paper's
// Section 5 evaluation: it injects faults into a simulated system governed
// by a recovery model, drives a controller through the
// detect–decide–act–observe loop, and collects the per-fault metrics of
// Table 1 (cost, recovery time, residual time, algorithm time, recovery
// actions, monitor calls).
//
// The simulator stands in for the authors' EMN testbed; like theirs, it is
// a model-driven simulation — the true system state evolves by the recovery
// model's transition function, monitor outputs are sampled from the
// observation function, and costs accrue via the reward structure (rate ×
// duration), while the controller's decision time is measured in real wall
// time.
package sim

import (
	"errors"
	"fmt"
	"time"

	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
	"bpomdp/internal/stats"
)

// ErrTimedOut is wrapped into episode errors when a controller fails to
// terminate within the step budget.
var ErrTimedOut = errors.New("sim: controller did not terminate within step budget")

// EpisodeResult holds the per-fault metrics of one recovery episode; the
// fields mirror Table 1's columns.
type EpisodeResult struct {
	// Injected is the injected fault state.
	Injected int
	// Recovered reports whether the system was actually fault-free when the
	// controller terminated.
	Recovered bool
	// Steps is the number of decision steps (including pure observations).
	Steps int
	// Cost is the accumulated cost (dropped requests: drop rate × time),
	// i.e. the negated reward accrued on the true trajectory.
	Cost float64
	// RecoveryTime is the simulated time from fault injection to controller
	// termination, in seconds.
	RecoveryTime float64
	// ResidualTime is the simulated time the fault was actually present, in
	// seconds.
	ResidualTime float64
	// AlgoTime is the real wall-clock time the controller spent deciding.
	AlgoTime time.Duration
	// Actions is the number of recovery actions executed (restarts and
	// reboots; observations excluded).
	Actions int
	// MonitorCalls is the number of monitor sweeps performed (one follows
	// every step, including the initial detection sweep).
	MonitorCalls int
}

// Runner executes recovery episodes against a recovery model's simulated
// true system.
type Runner struct {
	rm      *core.RecoveryModel
	isNull  []bool
	maxStep int
}

// NewRunner builds a Runner for the recovery model. maxSteps caps each
// episode (0 means 1000).
func NewRunner(rm *core.RecoveryModel, maxSteps int) (*Runner, error) {
	if err := rm.Validate(); err != nil {
		return nil, err
	}
	if maxSteps == 0 {
		maxSteps = 1000
	}
	if maxSteps < 1 {
		return nil, fmt.Errorf("sim: non-positive step budget %d", maxSteps)
	}
	isNull := make([]bool, rm.POMDP.NumStates())
	for _, s := range rm.NullStates {
		isNull[s] = true
	}
	return &Runner{rm: rm, isNull: isNull, maxStep: maxSteps}, nil
}

// RunEpisode injects faultState, performs the initial detection sweep, and
// drives ctrl until it terminates. initial is the controller's prior belief
// before the first monitor output (it may be sized for a transformed model
// with extra states appended after the base states; base action and
// observation indices must coincide, which the Section 3.1 transforms
// guarantee).
func (r *Runner) RunEpisode(ctrl controller.Controller, initial pomdp.Belief, faultState int, stream *rng.Stream) (EpisodeResult, error) {
	p := r.rm.POMDP
	if faultState < 0 || faultState >= p.NumStates() {
		return EpisodeResult{}, fmt.Errorf("sim: fault state %d out of range [0,%d)", faultState, p.NumStates())
	}
	res := EpisodeResult{Injected: faultState}
	if err := ctrl.Reset(initial); err != nil {
		return res, fmt.Errorf("sim: reset %s: %w", ctrl.Name(), err)
	}

	state := faultState
	obsAction := r.rm.MonitorAction

	// Initial detection sweep: the monitors fire once so the controller can
	// condition its uniform prior on real outputs (Section 4).
	state, err := r.step(ctrl, &res, state, obsAction, stream)
	if err != nil {
		return res, err
	}

	for res.Steps = 1; res.Steps <= r.maxStep; res.Steps++ {
		if sa, ok := ctrl.(controller.StateAware); ok {
			sa.ObserveTrueState(state)
		}
		t0 := time.Now()
		d, err := ctrl.Decide()
		res.AlgoTime += time.Since(t0)
		if err != nil {
			return res, fmt.Errorf("sim: %s decide: %w", ctrl.Name(), err)
		}
		if d.Terminate {
			res.Recovered = r.isNull[state]
			return res, nil
		}
		if d.Action < 0 || d.Action >= p.NumActions() {
			return res, fmt.Errorf("sim: %s chose invalid action %d", ctrl.Name(), d.Action)
		}
		if d.Action != obsAction {
			res.Actions++
		}
		state, err = r.step(ctrl, &res, state, d.Action, stream)
		if err != nil {
			return res, err
		}
	}
	return res, fmt.Errorf("sim: %s after %d steps: %w", ctrl.Name(), r.maxStep, ErrTimedOut)
}

// step executes one action on the true system (transition + monitor sweep +
// accounting) and feeds the sampled observation to the controller.
func (r *Runner) step(ctrl controller.Controller, res *EpisodeResult, state, action int, stream *rng.Stream) (int, error) {
	p := r.rm.POMDP
	dur := r.rm.Durations[action]
	tMon := r.rm.MonitorDuration

	// Cost is the negated model reward on the true trajectory; the model's
	// r(s,a) already folds in the action duration and the trailing sweep.
	res.Cost += -p.M.Reward[action][state]
	res.RecoveryTime += dur + tMon
	if !r.isNull[state] {
		res.ResidualTime += dur
	}

	next, err := r.sampleTransition(stream, state, action)
	if err != nil {
		return 0, err
	}
	if !r.isNull[next] {
		res.ResidualTime += tMon
	}
	obs, err := r.sampleObservation(stream, next, action)
	if err != nil {
		return 0, err
	}
	res.MonitorCalls++
	if err := ctrl.Observe(action, obs); err != nil {
		return 0, fmt.Errorf("sim: %s observe: %w", ctrl.Name(), err)
	}
	return next, nil
}

func (r *Runner) sampleTransition(stream *rng.Stream, s, a int) (int, error) {
	weights := make([]float64, r.rm.POMDP.NumStates())
	r.rm.POMDP.M.Trans[a].Row(s, func(c int, v float64) { weights[c] = v })
	next, err := stream.Categorical(weights)
	if err != nil {
		return 0, fmt.Errorf("sim: transition from %s under %s: %w",
			r.rm.POMDP.M.StateName(s), r.rm.POMDP.M.ActionName(a), err)
	}
	return next, nil
}

func (r *Runner) sampleObservation(stream *rng.Stream, s, a int) (int, error) {
	weights := make([]float64, r.rm.POMDP.NumObservations())
	r.rm.POMDP.Obs[a].Row(s, func(o int, v float64) { weights[o] = v })
	obs, err := stream.Categorical(weights)
	if err != nil {
		return 0, fmt.Errorf("sim: observation in %s under %s: %w",
			r.rm.POMDP.M.StateName(s), r.rm.POMDP.M.ActionName(a), err)
	}
	return obs, nil
}

// CampaignResult aggregates the per-fault averages of a fault-injection
// campaign — one Table 1 row.
type CampaignResult struct {
	// Name labels the controller.
	Name string
	// Episodes and Recovered count injections and successful recoveries.
	Episodes, Recovered int
	// Abandoned counts episodes that failed with an error instead of
	// terminating (only non-zero with CampaignOptions.ContinueOnError).
	Abandoned int
	// Per-fault metric accumulators.
	Cost, RecoveryTime, ResidualTime, AlgoTimeMs, Actions, MonitorCalls stats.Accumulator
}

// CampaignOptions tunes RunCampaignOpts.
type CampaignOptions struct {
	// ContinueOnError records a failed episode as Abandoned and moves on to
	// the next injection instead of aborting the campaign — the right mode
	// when the controller sits behind an unreliable transport and an
	// episode-level failure is itself a measurement.
	ContinueOnError bool
	// EpisodeFactory, when set, supplies a fresh controller per episode
	// (e.g. a new remote episode from a client); ctrl passed to the
	// campaign is ignored. The second return value, when non-nil, is called
	// after the episode with its error (nil on success) — a cleanup hook
	// for abandoning remote episodes.
	EpisodeFactory func(episode int) (controller.Controller, func(error), error)
}

// RunCampaign injects episodes faults (uniformly over faultStates) and
// aggregates per-fault metrics. Episode RNG streams are derived from the
// given stream per episode index, so campaigns are reproducible and
// insensitive to controller internals.
func (r *Runner) RunCampaign(ctrl controller.Controller, initial pomdp.Belief, faultStates []int, episodes int, stream *rng.Stream) (CampaignResult, error) {
	return r.RunCampaignOpts(ctrl, initial, faultStates, episodes, stream, CampaignOptions{})
}

// RunCampaignOpts is RunCampaign with per-episode controller factories and
// error tolerance (see CampaignOptions).
func (r *Runner) RunCampaignOpts(ctrl controller.Controller, initial pomdp.Belief, faultStates []int, episodes int, stream *rng.Stream, opts CampaignOptions) (CampaignResult, error) {
	var out CampaignResult
	if ctrl != nil {
		out.Name = ctrl.Name()
	}
	if len(faultStates) == 0 {
		return out, fmt.Errorf("sim: no fault states to inject")
	}
	if episodes < 1 {
		return out, fmt.Errorf("sim: non-positive episode count %d", episodes)
	}
	if ctrl == nil && opts.EpisodeFactory == nil {
		return out, fmt.Errorf("sim: nil controller and no episode factory")
	}
	for i := 0; i < episodes; i++ {
		ep := stream.SplitN("episode", i)
		fault := faultStates[ep.IntN(len(faultStates))]
		epCtrl := ctrl
		var done func(error)
		if opts.EpisodeFactory != nil {
			c, cleanup, err := opts.EpisodeFactory(i)
			if err != nil {
				if opts.ContinueOnError {
					out.Abandoned++
					continue
				}
				return out, fmt.Errorf("sim: episode %d factory: %w", i, err)
			}
			epCtrl, done = c, cleanup
			if out.Name == "" {
				out.Name = epCtrl.Name()
			}
		}
		res, err := r.RunEpisode(epCtrl, initial, fault, ep)
		if done != nil {
			done(err)
		}
		if err != nil {
			if opts.ContinueOnError {
				out.Abandoned++
				continue
			}
			return out, fmt.Errorf("sim: episode %d (fault %s): %w",
				i, r.rm.POMDP.M.StateName(fault), err)
		}
		out.Episodes++
		if res.Recovered {
			out.Recovered++
		}
		out.Cost.Add(res.Cost)
		out.RecoveryTime.Add(res.RecoveryTime)
		out.ResidualTime.Add(res.ResidualTime)
		out.AlgoTimeMs.Add(float64(res.AlgoTime) / float64(time.Millisecond))
		out.Actions.Add(float64(res.Actions))
		out.MonitorCalls.Add(float64(res.MonitorCalls))
	}
	return out, nil
}

// Row renders the campaign as a Table 1 row: cost, recovery time, residual
// time, algorithm time, actions, monitor calls (per-fault averages).
func (c *CampaignResult) Row() []string {
	return []string{
		c.Name,
		fmt.Sprintf("%.2f", c.Cost.Mean()),
		fmt.Sprintf("%.2f", c.RecoveryTime.Mean()),
		fmt.Sprintf("%.2f", c.ResidualTime.Mean()),
		fmt.Sprintf("%.3f", c.AlgoTimeMs.Mean()),
		fmt.Sprintf("%.3f", c.Actions.Mean()),
		fmt.Sprintf("%.2f", c.MonitorCalls.Mean()),
		fmt.Sprintf("%d/%d", c.Recovered, c.Episodes),
	}
}

// TableHeaders are the column headers matching Row.
func TableHeaders() []string {
	return []string{"Algorithm", "Cost", "RecoveryTime(s)", "ResidualTime(s)", "AlgoTime(ms)", "Actions", "MonitorCalls", "Recovered"}
}
