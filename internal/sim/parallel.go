package sim

import (
	"runtime"

	"bpomdp/internal/rng"
)

// RunCampaignParallel runs a fault-injection campaign across workers
// goroutines (0 means GOMAXPROCS). It is a thin wrapper over
// RunCampaignOpts with CampaignOptions.Workers and WorkerFactory set — the
// unified campaign engine — kept for callers that predate the merge.
//
// Episode i uses the same derived RNG stream as a sequential campaign and
// is assigned to worker i mod workers, so for a fixed worker count the
// campaign is exactly reproducible. Adaptive controllers (the bounded
// controller with online bound improvement) hold per-worker state here, so
// their later-episode behavior can differ slightly from a sequential run
// sharing one controller; the aggregate statistics are merged exactly
// (stats.Accumulator.Merge).
//
// Unlike its pre-unification incarnation, a failing worker no longer
// discards the other workers' completed episodes: the returned
// CampaignResult carries every completed episode and the error joins every
// worker's failure (errors.Join).
func (r *Runner) RunCampaignParallel(factory ControllerFactory, faultStates []int, episodes, workers int, stream *rng.Stream) (CampaignResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return r.RunCampaignOpts(nil, nil, faultStates, episodes, stream, CampaignOptions{
		Workers:       workers,
		WorkerFactory: factory,
	})
}
