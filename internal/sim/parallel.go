package sim

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"bpomdp/internal/controller"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
)

// ControllerFactory builds an independent controller (and its initial
// belief) for one worker. Controllers are stateful and not safe for
// concurrent use, so the parallel runner gives each worker its own.
type ControllerFactory func() (controller.Controller, pomdp.Belief, error)

// RunCampaignParallel runs a fault-injection campaign across workers
// goroutines (0 means GOMAXPROCS). Episode i uses the same derived RNG
// stream as the sequential runner and is assigned to worker i mod workers,
// so for a fixed worker count the campaign is exactly reproducible.
//
// Adaptive controllers (the bounded controller with online bound
// improvement) hold per-worker state here, so their later-episode behavior
// can differ slightly from a sequential run sharing one controller; the
// aggregate statistics are merged exactly (stats.Accumulator.Merge).
func (r *Runner) RunCampaignParallel(factory ControllerFactory, faultStates []int, episodes, workers int, stream *rng.Stream) (CampaignResult, error) {
	if len(faultStates) == 0 {
		return CampaignResult{}, fmt.Errorf("sim: no fault states to inject")
	}
	if episodes < 1 {
		return CampaignResult{}, fmt.Errorf("sim: non-positive episode count %d", episodes)
	}
	if factory == nil {
		return CampaignResult{}, fmt.Errorf("sim: nil controller factory")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > episodes {
		workers = episodes
	}

	results := make([]CampaignResult, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctrl, initial, err := factory()
			if err != nil {
				errs[w] = fmt.Errorf("sim: worker %d factory: %w", w, err)
				return
			}
			out := &results[w]
			out.Name = ctrl.Name()
			for i := w; i < episodes; i += workers {
				ep := stream.SplitN("episode", i)
				fault := faultStates[ep.IntN(len(faultStates))]
				res, err := r.RunEpisode(ctrl, initial, fault, ep)
				if err != nil {
					errs[w] = fmt.Errorf("sim: worker %d episode %d: %w", w, i, err)
					return
				}
				out.Episodes++
				if res.Recovered {
					out.Recovered++
				}
				out.Cost.Add(res.Cost)
				out.RecoveryTime.Add(res.RecoveryTime)
				out.ResidualTime.Add(res.ResidualTime)
				out.AlgoTimeMs.Add(float64(res.AlgoTime) / float64(time.Millisecond))
				out.Actions.Add(float64(res.Actions))
				out.MonitorCalls.Add(float64(res.MonitorCalls))
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return CampaignResult{}, err
		}
	}

	merged := results[0]
	for w := 1; w < workers; w++ {
		merged.Episodes += results[w].Episodes
		merged.Recovered += results[w].Recovered
		merged.Cost.Merge(&results[w].Cost)
		merged.RecoveryTime.Merge(&results[w].RecoveryTime)
		merged.ResidualTime.Merge(&results[w].ResidualTime)
		merged.AlgoTimeMs.Merge(&results[w].AlgoTimeMs)
		merged.Actions.Merge(&results[w].Actions)
		merged.MonitorCalls.Merge(&results[w].MonitorCalls)
	}
	return merged, nil
}
