package sim

import (
	"errors"
	"strings"
	"testing"

	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/linalg"
	"bpomdp/internal/models"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
)

// twoServerRecovery wires the Figure 1(a) model into a RecoveryModel with
// 1-second restarts and a 0.1-second monitor sweep.
func twoServerRecovery(t *testing.T) (*core.RecoveryModel, *models.TwoServer) {
	t.Helper()
	ts, err := models.NewTwoServer(models.TwoServerConfig{Coverage: 0.9, FalsePositive: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rm := &core.RecoveryModel{
		POMDP:           ts.Model,
		NullStates:      ts.NullStates,
		RateRewards:     ts.RateRewards,
		Durations:       []float64{1, 1, 0},
		MonitorAction:   ts.ActionObserve,
		MonitorDuration: 0.1,
	}
	if err := rm.Validate(); err != nil {
		t.Fatal(err)
	}
	return rm, ts
}

func preparedBounded(t *testing.T, rm *core.RecoveryModel) (*controller.Bounded, pomdp.Belief) {
	t.Helper()
	prep, err := core.Prepare(rm, core.PrepareOptions{OperatorResponseTime: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prep.Bootstrap(5, controller.VariantAverage, 1, rng.New(99)); err != nil {
		t.Fatal(err)
	}
	ctrl, err := prep.NewController(core.ControllerConfig{Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	initial, err := prep.InitialBelief()
	if err != nil {
		t.Fatal(err)
	}
	return ctrl, initial
}

func TestNewRunnerValidation(t *testing.T) {
	rm, _ := twoServerRecovery(t)
	if _, err := NewRunner(rm, -1); err == nil {
		t.Error("negative step budget accepted")
	}
	if _, err := NewRunner(&core.RecoveryModel{}, 0); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestRunEpisodeBounded(t *testing.T) {
	rm, _ := twoServerRecovery(t)
	runner, err := NewRunner(rm, 100)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, initial := preparedBounded(t, rm)
	res, err := runner.RunEpisode(ctrl, initial, 1 /* fault-a */, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recovered {
		t.Error("bounded controller terminated before recovery")
	}
	if res.Actions < 1 {
		t.Errorf("actions = %d, want >= 1 (a restart is needed)", res.Actions)
	}
	if res.MonitorCalls < res.Actions {
		t.Errorf("monitor calls %d < actions %d (every step ends with a sweep)", res.MonitorCalls, res.Actions)
	}
	if res.Cost <= 0 {
		t.Errorf("cost = %v, want > 0", res.Cost)
	}
	if res.RecoveryTime < res.ResidualTime {
		t.Errorf("recovery time %v < residual time %v", res.RecoveryTime, res.ResidualTime)
	}
	if res.ResidualTime <= 0 {
		t.Errorf("residual time = %v, want > 0", res.ResidualTime)
	}
	if res.AlgoTime < 0 {
		t.Errorf("negative algorithm time")
	}
}

func TestRunEpisodeRejectsBadFault(t *testing.T) {
	rm, _ := twoServerRecovery(t)
	runner, err := NewRunner(rm, 100)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, initial := preparedBounded(t, rm)
	if _, err := runner.RunEpisode(ctrl, initial, 99, rng.New(1)); err == nil {
		t.Error("out-of-range fault accepted")
	}
}

// stuckController observes forever and never terminates — used to exercise
// the simulator's step budget.
type stuckController struct{ observeAction int }

func (s *stuckController) Reset(pomdp.Belief) error { return nil }
func (s *stuckController) Decide() (controller.Decision, error) {
	return controller.Decision{Action: s.observeAction}, nil
}
func (s *stuckController) Observe(int, int) error { return nil }
func (s *stuckController) Belief() pomdp.Belief   { return nil }
func (s *stuckController) Name() string           { return "stuck" }

func TestRunEpisodeTimesOut(t *testing.T) {
	rm, ts := twoServerRecovery(t)
	runner, err := NewRunner(rm, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, err = runner.RunEpisode(&stuckController{observeAction: ts.ActionObserve}, pomdp.UniformBelief(3), 1, rng.New(2))
	if !errors.Is(err, ErrTimedOut) {
		t.Errorf("err = %v, want ErrTimedOut", err)
	}
}

func TestRunCampaignAllControllersRecover(t *testing.T) {
	rm, ts := twoServerRecovery(t)
	runner, err := NewRunner(rm, 500)
	if err != nil {
		t.Fatal(err)
	}
	boundedCtrl, boundedInit := preparedBounded(t, rm)
	heurCtrl, err := controller.NewHeuristic(ts.Model, controller.HeuristicConfig{
		Depth: 1, NullStates: ts.NullStates, TerminationProbability: 0.999,
	})
	if err != nil {
		t.Fatal(err)
	}
	mlCtrl, err := controller.NewMostLikely(ts.Model, controller.MostLikelyConfig{
		NullStates: ts.NullStates, TerminationProbability: 0.999,
	})
	if err != nil {
		t.Fatal(err)
	}
	oracleCtrl, err := controller.NewOracle(ts.Model, ts.NullStates)
	if err != nil {
		t.Fatal(err)
	}

	uniform := pomdp.UniformBelief(3)
	faults := []int{1, 2}
	type entry struct {
		ctrl    controller.Controller
		initial pomdp.Belief
	}
	results := make(map[string]CampaignResult)
	for _, e := range []entry{
		{boundedCtrl, boundedInit},
		{heurCtrl, uniform},
		{mlCtrl, uniform},
		{oracleCtrl, uniform},
	} {
		res, err := runner.RunCampaign(e.ctrl, e.initial, faults, 50, rng.New(7).Split(e.ctrl.Name()))
		if err != nil {
			t.Fatalf("%s: %v", e.ctrl.Name(), err)
		}
		if res.Recovered != res.Episodes {
			t.Errorf("%s recovered %d/%d", e.ctrl.Name(), res.Recovered, res.Episodes)
		}
		results[e.ctrl.Name()] = res
	}

	// Table 1 shape: the oracle is the unattainable ideal; the bounded
	// controller must not be worse than the most-likely baseline on cost.
	oracle := results["oracle"]
	bounded := results[boundedCtrl.Name()]
	ml := results["most-likely"]
	if oracle.Cost.Mean() > bounded.Cost.Mean()+1e-9 {
		t.Errorf("oracle cost %v > bounded cost %v", oracle.Cost.Mean(), bounded.Cost.Mean())
	}
	if bounded.Cost.Mean() > ml.Cost.Mean()+1e-9 {
		t.Errorf("bounded cost %v > most-likely cost %v", bounded.Cost.Mean(), ml.Cost.Mean())
	}
	if oracle.Actions.Mean() != 1 {
		t.Errorf("oracle actions = %v, want exactly 1", oracle.Actions.Mean())
	}
	if oracle.MonitorCalls.Mean() < 1 {
		t.Errorf("oracle monitor calls = %v (initial sweep missing?)", oracle.MonitorCalls.Mean())
	}

	// Row rendering sanity.
	row := bounded.Row()
	if len(row) != len(TableHeaders()) {
		t.Errorf("row has %d cells for %d headers", len(row), len(TableHeaders()))
	}
}

func TestRunCampaignValidation(t *testing.T) {
	rm, _ := twoServerRecovery(t)
	runner, err := NewRunner(rm, 10)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, initial := preparedBounded(t, rm)
	if _, err := runner.RunCampaign(ctrl, initial, nil, 5, rng.New(1)); err == nil {
		t.Error("empty fault set accepted")
	}
	if _, err := runner.RunCampaign(ctrl, initial, []int{1}, 0, rng.New(1)); err == nil {
		t.Error("zero episodes accepted")
	}
}

func TestCampaignDeterminism(t *testing.T) {
	rm, ts := twoServerRecovery(t)
	runner, err := NewRunner(rm, 500)
	if err != nil {
		t.Fatal(err)
	}
	run := func() CampaignResult {
		ctrl, err := controller.NewMostLikely(ts.Model, controller.MostLikelyConfig{
			NullStates: ts.NullStates, TerminationProbability: 0.999,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := runner.RunCampaign(ctrl, pomdp.UniformBelief(3), []int{1, 2}, 30, rng.New(42))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Cost.Mean() != b.Cost.Mean() || a.MonitorCalls.Mean() != b.MonitorCalls.Mean() {
		t.Errorf("campaigns with the same seed differ: %v vs %v", a.Cost.Mean(), b.Cost.Mean())
	}
}

func TestRateRewardConsistency(t *testing.T) {
	// The cost accumulated by an observe-only step must equal the rate
	// reward times the sweep duration — ties the simulator's accounting to
	// the model's reward structure.
	rm, _ := twoServerRecovery(t)
	r := rm.POMDP.M.Reward[rm.MonitorAction]
	for s := 0; s < rm.POMDP.NumStates(); s++ {
		want := rm.RateRewards[s] * rm.MonitorDuration
		// models.TwoServer prices observe at a flat -0.5 in fault states
		// rather than rate×duration, so only check sign consistency here.
		if (want == 0) != (r[s] == 0) {
			t.Errorf("state %d: rate %v vs observe reward %v disagree on zero", s, want, r[s])
		}
	}
	_ = linalg.Vector{}
}

// TestCampaignContinueOnError: with ContinueOnError a failing episode
// factory costs one Abandoned entry, not the whole campaign.
func TestCampaignContinueOnError(t *testing.T) {
	rm, ts := twoServerRecovery(t)
	runner, err := NewRunner(rm, 500)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, initial := preparedBounded(t, rm)
	faults := []int{ts.StateFaultA, ts.StateFaultB}

	var cleanupErrs []error
	res, err := runner.RunCampaignOpts(nil, initial, faults, 6, rng.New(5), CampaignOptions{
		ContinueOnError: true,
		EpisodeFactory: func(i int) (controller.Controller, func(error), error) {
			if i%3 == 2 {
				return nil, nil, errors.New("flaky factory")
			}
			return ctrl, func(err error) { cleanupErrs = append(cleanupErrs, err) }, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Abandoned != 2 {
		t.Errorf("abandoned = %d, want 2 (episodes 2 and 5)", res.Abandoned)
	}
	if res.Episodes != 4 || res.Recovered != 4 {
		t.Errorf("campaign %d/%d recovered, want 4/4", res.Recovered, res.Episodes)
	}
	if len(cleanupErrs) != 4 {
		t.Errorf("cleanup called %d times, want once per run episode", len(cleanupErrs))
	}
	for i, ce := range cleanupErrs {
		if ce != nil {
			t.Errorf("cleanup %d got error %v for a successful episode", i, ce)
		}
	}

	// Without ContinueOnError the same factory aborts the campaign.
	_, err = runner.RunCampaignOpts(nil, initial, faults, 6, rng.New(5), CampaignOptions{
		EpisodeFactory: func(i int) (controller.Controller, func(error), error) {
			if i%3 == 2 {
				return nil, nil, errors.New("flaky factory")
			}
			return ctrl, nil, nil
		},
	})
	if err == nil || !strings.Contains(err.Error(), "flaky factory") {
		t.Errorf("strict campaign error = %v", err)
	}

	// Nil controller with no factory is rejected up front.
	if _, err := runner.RunCampaignOpts(nil, initial, faults, 1, rng.New(5), CampaignOptions{}); err == nil {
		t.Error("nil controller with no factory accepted")
	}
}
