package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"bpomdp/internal/controller"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
	"bpomdp/internal/stats"
)

// CampaignResult aggregates the per-fault averages of a fault-injection
// campaign — one Table 1 row.
type CampaignResult struct {
	// Name labels the controller.
	Name string
	// Episodes and Recovered count injections and successful recoveries.
	Episodes, Recovered int
	// Abandoned counts episodes that failed with an error instead of
	// terminating (only non-zero with CampaignOptions.ContinueOnError).
	Abandoned int
	// Per-fault metric accumulators.
	Cost, RecoveryTime, ResidualTime, AlgoTimeMs, Actions, MonitorCalls stats.Accumulator

	// Decision-stat aggregates, non-zero only when the campaign's
	// controllers collect per-decision stats: total decisions covered, the
	// Max-Avg expansion work they performed, and per-episode means of the
	// bound gap (Property 1(b) slack) and decision-time belief entropy.
	Decisions                        int
	TreeNodes, LeafEvals, SlabPasses uint64
	BoundGap, BeliefEntropy          stats.Accumulator
	// FSCDecisions and TreeDecisions split Decisions by serving tier: table
	// hits of a compiled FSC vs Max-Avg tree expansions (including FSC
	// fallbacks). Zero unless the controllers collect stats.
	FSCDecisions, TreeDecisions int
}

// add folds one successful episode into the aggregate.
func (c *CampaignResult) add(res EpisodeResult) {
	c.Episodes++
	if res.Recovered {
		c.Recovered++
	}
	c.Cost.Add(res.Cost)
	c.RecoveryTime.Add(res.RecoveryTime)
	c.ResidualTime.Add(res.ResidualTime)
	c.AlgoTimeMs.Add(float64(res.AlgoTime) / float64(time.Millisecond))
	c.Actions.Add(float64(res.Actions))
	c.MonitorCalls.Add(float64(res.MonitorCalls))
	if res.Decisions > 0 {
		c.Decisions += res.Decisions
		c.TreeNodes += res.TreeNodes
		c.LeafEvals += res.LeafEvals
		c.SlabPasses += res.SlabPasses
		c.BoundGap.Add(res.BoundGapSum / float64(res.Decisions))
		c.BeliefEntropy.Add(res.EntropySum / float64(res.Decisions))
		c.FSCDecisions += res.FSCDecisions
		c.TreeDecisions += res.TreeDecisions
	}
}

// merge folds another worker's aggregate into c (exact parallel-variance
// combination via stats.Accumulator.Merge).
func (c *CampaignResult) merge(o *CampaignResult) {
	if c.Name == "" {
		c.Name = o.Name
	}
	c.Episodes += o.Episodes
	c.Recovered += o.Recovered
	c.Abandoned += o.Abandoned
	c.Cost.Merge(&o.Cost)
	c.RecoveryTime.Merge(&o.RecoveryTime)
	c.ResidualTime.Merge(&o.ResidualTime)
	c.AlgoTimeMs.Merge(&o.AlgoTimeMs)
	c.Actions.Merge(&o.Actions)
	c.MonitorCalls.Merge(&o.MonitorCalls)
	c.Decisions += o.Decisions
	c.TreeNodes += o.TreeNodes
	c.LeafEvals += o.LeafEvals
	c.SlabPasses += o.SlabPasses
	c.BoundGap.Merge(&o.BoundGap)
	c.BeliefEntropy.Merge(&o.BeliefEntropy)
	c.FSCDecisions += o.FSCDecisions
	c.TreeDecisions += o.TreeDecisions
}

// ControllerFactory builds an independent controller (and its initial
// belief) for one worker. Controllers are stateful and not safe for
// concurrent use, so the parallel campaign gives each worker its own.
type ControllerFactory func() (controller.Controller, pomdp.Belief, error)

// CampaignOptions tunes RunCampaignOpts. The zero value runs the campaign
// sequentially with a shared controller — the classic Table 1 loop.
type CampaignOptions struct {
	// ContinueOnError records a failed episode as Abandoned and moves on to
	// the next injection instead of aborting the campaign — the right mode
	// when the controller sits behind an unreliable transport and an
	// episode-level failure is itself a measurement.
	ContinueOnError bool
	// EpisodeFactory, when set, supplies a fresh controller per episode
	// (e.g. a new remote episode from a client); ctrl passed to the
	// campaign is ignored. The second return value, when non-nil, is called
	// after the episode with its error (nil on success) — a cleanup hook
	// for abandoning remote episodes. With Workers > 1 the factory is called
	// concurrently from worker goroutines and must be safe for that.
	EpisodeFactory func(episode int) (controller.Controller, func(error), error)
	// Workers is the number of campaign goroutines; 1 runs the campaign
	// sequentially on the calling goroutine. Episode i is assigned to
	// worker i mod Workers and uses the same derived RNG stream at any
	// worker count, so for a fixed Workers value the campaign is exactly
	// reproducible; the merged statistics with Workers == 1 are bit-for-bit
	// the sequential result.
	//
	// Workers == 0 auto-tunes: when a WorkerFactory or EpisodeFactory makes
	// parallel execution possible, the count is picked from the episode
	// count and GOMAXPROCS (never more than one worker per four episodes,
	// never more than GOMAXPROCS); with only a shared controller it stays
	// sequential. Auto-tuned campaigns are reproducible only on a fixed
	// GOMAXPROCS — pass an explicit count when determinism across machines
	// matters.
	Workers int
	// WorkerFactory supplies each worker's private controller and initial
	// belief. Required when Workers > 1 and no EpisodeFactory is set: a
	// shared ctrl is stateful and cannot be driven from several goroutines.
	WorkerFactory ControllerFactory
	// BatchSize > 0 enables batched stepping: each worker keeps up to
	// BatchSize episodes live at once and advances them together through
	// one BatchDecider call per round, amortizing tree expansion and
	// leaf-bound evaluation across the batch. Per-episode RNG streams,
	// trajectories, and metrics are bit-identical to sequential stepping
	// (each worker folds its completed episodes in episode-index order),
	// so BatchSize is purely a throughput knob. Batched stepping drives
	// bare belief filters instead of the episode controller, so it is
	// incompatible with EpisodeFactory and does not feed StateAware
	// controllers.
	BatchSize int
	// BatchDecider supplies the decision engine for batched stepping. When
	// nil, the worker's controller (shared ctrl or WorkerFactory product)
	// must implement controller.BatchDecider. A BatchDecider is stateful
	// scratch-wise and must not be shared between workers; setting it with
	// Workers > 1 is rejected — use a WorkerFactory whose controllers
	// implement controller.BatchDecider instead.
	BatchDecider controller.BatchDecider
}

// RunCampaign injects episodes faults (uniformly over faultStates) and
// aggregates per-fault metrics. Episode RNG streams are derived from the
// given stream per episode index, so campaigns are reproducible and
// insensitive to controller internals.
func (r *Runner) RunCampaign(ctrl controller.Controller, initial pomdp.Belief, faultStates []int, episodes int, stream *rng.Stream) (CampaignResult, error) {
	return r.RunCampaignOpts(ctrl, initial, faultStates, episodes, stream, CampaignOptions{})
}

// RunCampaignOpts is the campaign engine: RunCampaign plus per-episode
// controller factories, error tolerance, and multi-worker execution (see
// CampaignOptions). The sequential path is simply Workers == 1.
//
// Error handling is uniform across worker counts: without ContinueOnError a
// failing episode stops the campaign, but the CampaignResult still carries
// every episode completed before the failure (partial results are never
// discarded), and the returned error joins every worker's failure via
// errors.Join rather than surfacing an arbitrary first one.
func (r *Runner) RunCampaignOpts(ctrl controller.Controller, initial pomdp.Belief, faultStates []int, episodes int, stream *rng.Stream, opts CampaignOptions) (CampaignResult, error) {
	var out CampaignResult
	if ctrl != nil {
		out.Name = ctrl.Name()
	}
	if len(faultStates) == 0 {
		return out, fmt.Errorf("sim: no fault states to inject")
	}
	if episodes < 1 {
		return out, fmt.Errorf("sim: non-positive episode count %d", episodes)
	}
	if ctrl == nil && opts.EpisodeFactory == nil && opts.WorkerFactory == nil && opts.BatchDecider == nil {
		return out, fmt.Errorf("sim: nil controller and no episode or worker factory")
	}
	if opts.BatchSize < 0 {
		return out, fmt.Errorf("sim: negative batch size %d", opts.BatchSize)
	}
	if opts.BatchSize > 0 && opts.EpisodeFactory != nil {
		return out, fmt.Errorf("sim: batched stepping is incompatible with EpisodeFactory")
	}
	if opts.BatchDecider != nil && opts.BatchSize == 0 {
		return out, fmt.Errorf("sim: BatchDecider set without a positive BatchSize")
	}
	workers := opts.Workers
	if workers == 0 && (opts.WorkerFactory != nil || opts.EpisodeFactory != nil) {
		workers = autoWorkers(episodes, runtime.GOMAXPROCS(0))
	}
	if workers < 1 {
		workers = 1
	}
	if workers > episodes {
		workers = episodes
	}
	if workers > 1 && opts.BatchDecider != nil {
		return out, fmt.Errorf("sim: shared batch decider cannot run %d workers; use a WorkerFactory of batch-capable controllers", workers)
	}

	if workers == 1 {
		if opts.WorkerFactory != nil && opts.EpisodeFactory == nil {
			c, ini, err := opts.WorkerFactory()
			if err != nil {
				return out, fmt.Errorf("sim: worker 0 factory: %w", err)
			}
			ctrl, initial = c, ini
			out.Name = ctrl.Name()
		}
		res, err := r.runWorker(0, 1, ctrl, initial, faultStates, episodes, stream, opts)
		res.Name = firstNonEmpty(res.Name, out.Name)
		return res, err
	}

	if opts.EpisodeFactory == nil && opts.WorkerFactory == nil {
		return out, fmt.Errorf("sim: shared controller cannot run %d workers; set WorkerFactory or EpisodeFactory", workers)
	}

	results := make([]CampaignResult, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wCtrl, wInitial := ctrl, initial
			if opts.WorkerFactory != nil && opts.EpisodeFactory == nil {
				c, ini, err := opts.WorkerFactory()
				if err != nil {
					errs[w] = fmt.Errorf("sim: worker %d factory: %w", w, err)
					return
				}
				wCtrl, wInitial = c, ini
			}
			results[w], errs[w] = r.runWorker(w, workers, wCtrl, wInitial, faultStates, episodes, stream, opts)
		}(w)
	}
	wg.Wait()

	for w := range results {
		out.merge(&results[w])
	}
	return out, errors.Join(errs...)
}

// firstNonEmpty returns a if non-empty, else b.
func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

// autoWorkers picks the worker count for Workers == 0: one worker per four
// episodes (a worker with fewer episodes spends more time starting up than
// simulating), capped at GOMAXPROCS, and never below one.
func autoWorkers(episodes, procs int) int {
	w := episodes / 4
	if w < 1 {
		w = 1
	}
	if w > procs {
		w = procs
	}
	return w
}

// runWorker runs worker w's stripe of the campaign — episodes w, w+workers,
// w+2·workers, … — sequentially on the calling goroutine. It is the single
// episode loop behind every campaign mode: the sequential engine is exactly
// runWorker(0, 1, …). On a fatal episode error it stops its own stripe and
// returns the partial aggregate alongside the error; other workers finish
// their stripes, so the merged partial result of a failing campaign is
// itself deterministic for a fixed worker count.
func (r *Runner) runWorker(w, workers int, ctrl controller.Controller, initial pomdp.Belief, faultStates []int, episodes int, stream *rng.Stream, opts CampaignOptions) (CampaignResult, error) {
	if opts.BatchSize > 0 {
		return r.runWorkerBatched(w, workers, ctrl, initial, faultStates, episodes, stream, opts)
	}
	var out CampaignResult
	if ctrl != nil {
		out.Name = ctrl.Name()
	}
	for i := w; i < episodes; i += workers {
		ep := stream.SplitN("episode", i)
		fault := faultStates[ep.IntN(len(faultStates))]
		epCtrl := ctrl
		var done func(error)
		if opts.EpisodeFactory != nil {
			c, cleanup, err := opts.EpisodeFactory(i)
			if err != nil {
				if opts.ContinueOnError {
					out.Abandoned++
					continue
				}
				return out, fmt.Errorf("sim: episode %d factory: %w", i, err)
			}
			epCtrl, done = c, cleanup
			if out.Name == "" {
				out.Name = epCtrl.Name()
			}
		}
		res, err := r.RunEpisode(epCtrl, initial, fault, ep)
		if done != nil {
			done(err)
		}
		if err != nil {
			if opts.ContinueOnError {
				out.Abandoned++
				continue
			}
			return out, fmt.Errorf("sim: episode %d (fault %s): %w",
				i, r.rm.POMDP.M.StateName(fault), err)
		}
		out.add(res)
	}
	return out, nil
}

// Row renders the campaign as a Table 1 row: cost, recovery time, residual
// time, algorithm time, actions, monitor calls (per-fault averages).
func (c *CampaignResult) Row() []string {
	return []string{
		c.Name,
		fmt.Sprintf("%.2f", c.Cost.Mean()),
		fmt.Sprintf("%.2f", c.RecoveryTime.Mean()),
		fmt.Sprintf("%.2f", c.ResidualTime.Mean()),
		fmt.Sprintf("%.3f", c.AlgoTimeMs.Mean()),
		fmt.Sprintf("%.3f", c.Actions.Mean()),
		fmt.Sprintf("%.2f", c.MonitorCalls.Mean()),
		fmt.Sprintf("%d/%d", c.Recovered, c.Episodes),
	}
}

// TableHeaders are the column headers matching Row.
func TableHeaders() []string {
	return []string{"Algorithm", "Cost", "RecoveryTime(s)", "ResidualTime(s)", "AlgoTime(ms)", "Actions", "MonitorCalls", "Recovered"}
}
