package sim

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"bpomdp/internal/controller"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
	"bpomdp/internal/stats"
)

// oldSequentialCampaign is a verbatim transcription of the pre-unification
// sequential RunCampaignOpts loop (PR 1 vintage). The unified engine with
// Workers == 1 must reproduce it bit-for-bit — same seeds, same episode
// order, same accumulator fold order — which is what pins down "the
// sequential path is just workers=1".
func oldSequentialCampaign(r *Runner, ctrl controller.Controller, initial pomdp.Belief, faultStates []int, episodes int, stream *rng.Stream, opts CampaignOptions) (CampaignResult, error) {
	var out CampaignResult
	if ctrl != nil {
		out.Name = ctrl.Name()
	}
	if len(faultStates) == 0 {
		return out, fmt.Errorf("sim: no fault states to inject")
	}
	if episodes < 1 {
		return out, fmt.Errorf("sim: non-positive episode count %d", episodes)
	}
	if ctrl == nil && opts.EpisodeFactory == nil {
		return out, fmt.Errorf("sim: nil controller and no episode factory")
	}
	for i := 0; i < episodes; i++ {
		ep := stream.SplitN("episode", i)
		fault := faultStates[ep.IntN(len(faultStates))]
		epCtrl := ctrl
		var done func(error)
		if opts.EpisodeFactory != nil {
			c, cleanup, err := opts.EpisodeFactory(i)
			if err != nil {
				if opts.ContinueOnError {
					out.Abandoned++
					continue
				}
				return out, fmt.Errorf("sim: episode %d factory: %w", i, err)
			}
			epCtrl, done = c, cleanup
			if out.Name == "" {
				out.Name = epCtrl.Name()
			}
		}
		res, err := r.RunEpisode(epCtrl, initial, fault, ep)
		if done != nil {
			done(err)
		}
		if err != nil {
			if opts.ContinueOnError {
				out.Abandoned++
				continue
			}
			return out, fmt.Errorf("sim: episode %d (fault %s): %w",
				i, r.rm.POMDP.M.StateName(fault), err)
		}
		out.Episodes++
		if res.Recovered {
			out.Recovered++
		}
		out.Cost.Add(res.Cost)
		out.RecoveryTime.Add(res.RecoveryTime)
		out.ResidualTime.Add(res.ResidualTime)
		out.AlgoTimeMs.Add(float64(res.AlgoTime) / float64(time.Millisecond))
		out.Actions.Add(float64(res.Actions))
		out.MonitorCalls.Add(float64(res.MonitorCalls))
	}
	return out, nil
}

// statsAcc is the zero accumulator used to blank the one wall-clock-derived
// metric (AlgoTimeMs) before bit-for-bit comparison: it folds real
// durations, which legitimately differ between any two runs.
type statsAcc = stats.Accumulator

func TestUnifiedWorkers1MatchesOldSequential(t *testing.T) {
	rm, ts := twoServerRecovery(t)
	runner, err := NewRunner(rm, 500)
	if err != nil {
		t.Fatal(err)
	}
	newCtrl := func() controller.Controller {
		ctrl, err := controller.NewMostLikely(ts.Model, controller.MostLikelyConfig{
			NullStates: ts.NullStates, TerminationProbability: 0.999,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ctrl
	}
	uniform := pomdp.UniformBelief(3)
	faults := []int{1, 2}
	const episodes = 80

	old, err := oldSequentialCampaign(runner, newCtrl(), uniform, faults, episodes, rng.New(17), CampaignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	unified, err := runner.RunCampaignOpts(newCtrl(), uniform, faults, episodes, rng.New(17), CampaignOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// AlgoTimeMs folds real wall-clock durations, which legitimately differ
	// between any two runs; everything else must be identical to the bit.
	old.AlgoTimeMs, unified.AlgoTimeMs = statsAcc{}, statsAcc{}
	if !reflect.DeepEqual(old, unified) {
		t.Errorf("unified workers=1 diverges from the old sequential runner:\nold:     %+v\nunified: %+v", old, unified)
	}
}

func TestUnifiedWorkers1MatchesOldSequentialWithFactoryAndErrors(t *testing.T) {
	rm, ts := twoServerRecovery(t)
	runner, err := NewRunner(rm, 500)
	if err != nil {
		t.Fatal(err)
	}
	factory := func(i int) (controller.Controller, func(error), error) {
		if i%4 == 3 {
			return nil, nil, errors.New("flaky factory")
		}
		ctrl, err := controller.NewMostLikely(ts.Model, controller.MostLikelyConfig{
			NullStates: ts.NullStates, TerminationProbability: 0.999,
		})
		return ctrl, nil, err
	}
	uniform := pomdp.UniformBelief(3)
	faults := []int{1, 2}
	opts := CampaignOptions{ContinueOnError: true, EpisodeFactory: factory}

	old, err := oldSequentialCampaign(runner, nil, uniform, faults, 40, rng.New(23), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 1
	unified, err := runner.RunCampaignOpts(nil, uniform, faults, 40, rng.New(23), opts)
	if err != nil {
		t.Fatal(err)
	}
	old.AlgoTimeMs, unified.AlgoTimeMs = statsAcc{}, statsAcc{}
	if !reflect.DeepEqual(old, unified) {
		t.Errorf("factory/ContinueOnError parity broken:\nold:     %+v\nunified: %+v", old, unified)
	}
	if unified.Abandoned != 10 {
		t.Errorf("abandoned = %d, want 10", unified.Abandoned)
	}
}

func TestUnifiedWorkers4Deterministic(t *testing.T) {
	rm, ts := twoServerRecovery(t)
	runner, err := NewRunner(rm, 500)
	if err != nil {
		t.Fatal(err)
	}
	factory := func() (controller.Controller, pomdp.Belief, error) {
		ctrl, err := controller.NewMostLikely(ts.Model, controller.MostLikelyConfig{
			NullStates: ts.NullStates, TerminationProbability: 0.999,
		})
		return ctrl, pomdp.UniformBelief(3), err
	}
	run := func() CampaignResult {
		res, err := runner.RunCampaignOpts(nil, nil, []int{1, 2}, 60, rng.New(31), CampaignOptions{
			Workers: 4, WorkerFactory: factory,
		})
		if err != nil {
			t.Fatal(err)
		}
		zeroed := res
		zeroed.AlgoTimeMs = statsAcc{}
		return zeroed
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("fixed workers=4 campaigns with the same seed differ:\na: %+v\nb: %+v", a, b)
	}
	if a.Episodes != 60 {
		t.Errorf("episodes = %d, want 60", a.Episodes)
	}
}

// decideFailController errors on Decide — a stand-in for a controller whose
// backing transport died mid-campaign.
type decideFailController struct{}

func (decideFailController) Reset(pomdp.Belief) error { return nil }
func (decideFailController) Decide() (controller.Decision, error) {
	return controller.Decision{}, errors.New("transport down")
}
func (decideFailController) Observe(int, int) error { return nil }
func (decideFailController) Belief() pomdp.Belief   { return nil }
func (decideFailController) Name() string           { return "decide-fail" }

// TestParallelWorkerErrorPreservesPartialResults is the regression test for
// the pre-unification data loss: RunCampaignParallel returned
// CampaignResult{} whenever any worker erred — discarding every completed
// episode — and surfaced only the first worker's error. The unified engine
// must keep the completed episodes and join all worker errors.
func TestParallelWorkerErrorPreservesPartialResults(t *testing.T) {
	rm, ts := twoServerRecovery(t)
	runner, err := NewRunner(rm, 500)
	if err != nil {
		t.Fatal(err)
	}
	goodCtrl := func() (controller.Controller, error) {
		return controller.NewMostLikely(ts.Model, controller.MostLikelyConfig{
			NullStates: ts.NullStates, TerminationProbability: 0.999,
		})
	}
	// Episodes 1 and 2 (workers 1 and 2 of 4) fail on their first episode;
	// workers 0 and 3 complete at least their first episodes.
	factory := func(i int) (controller.Controller, func(error), error) {
		if i == 1 || i == 2 {
			return decideFailController{}, nil, nil
		}
		ctrl, err := goodCtrl()
		return ctrl, nil, err
	}
	res, err := runner.RunCampaignOpts(nil, pomdp.UniformBelief(3), []int{1, 2}, 40, rng.New(3), CampaignOptions{
		Workers: 4, EpisodeFactory: factory,
	})
	if err == nil {
		t.Fatal("campaign with two failing workers reported success")
	}
	if res.Episodes == 0 {
		t.Fatalf("completed episodes discarded on worker error (the old data-loss bug): %+v", res)
	}
	if res.Episodes != res.Cost.N() {
		t.Errorf("episodes %d != cost samples %d: partial merge inconsistent", res.Episodes, res.Cost.N())
	}
	msg := err.Error()
	if !strings.Contains(msg, "episode 1") || !strings.Contains(msg, "episode 2") {
		t.Errorf("joined error should name both failing episodes, got: %v", msg)
	}
	// With ContinueOnError the same failures become Abandoned counts and the
	// campaign completes every other episode.
	res, err = runner.RunCampaignOpts(nil, pomdp.UniformBelief(3), []int{1, 2}, 40, rng.New(3), CampaignOptions{
		Workers: 4, EpisodeFactory: factory, ContinueOnError: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Abandoned != 2 {
		t.Errorf("abandoned = %d, want 2", res.Abandoned)
	}
	if res.Episodes != 38 {
		t.Errorf("episodes = %d, want 38", res.Episodes)
	}
}

// TestSequentialEpisodeErrorPreservesPartialResults pins the same guarantee
// on the sequential path (it held before unification too).
func TestSequentialEpisodeErrorPreservesPartialResults(t *testing.T) {
	rm, ts := twoServerRecovery(t)
	runner, err := NewRunner(rm, 500)
	if err != nil {
		t.Fatal(err)
	}
	factory := func(i int) (controller.Controller, func(error), error) {
		if i == 5 {
			return decideFailController{}, nil, nil
		}
		ctrl, err := controller.NewMostLikely(ts.Model, controller.MostLikelyConfig{
			NullStates: ts.NullStates, TerminationProbability: 0.999,
		})
		return ctrl, nil, err
	}
	res, err := runner.RunCampaignOpts(nil, pomdp.UniformBelief(3), []int{1, 2}, 20, rng.New(3), CampaignOptions{
		EpisodeFactory: factory,
	})
	if err == nil {
		t.Fatal("campaign with failing episode reported success")
	}
	if res.Episodes != 5 {
		t.Errorf("episodes = %d, want the 5 completed before the failure", res.Episodes)
	}
}

// TestSharedControllerRejectedInParallel: a shared stateful controller
// cannot be driven from several goroutines; the engine must refuse rather
// than race.
func TestSharedControllerRejectedInParallel(t *testing.T) {
	rm, ts := twoServerRecovery(t)
	runner, err := NewRunner(rm, 500)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := controller.NewMostLikely(ts.Model, controller.MostLikelyConfig{
		NullStates: ts.NullStates, TerminationProbability: 0.999,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = runner.RunCampaignOpts(ctrl, pomdp.UniformBelief(3), []int{1, 2}, 20, rng.New(3), CampaignOptions{Workers: 4})
	if err == nil || !strings.Contains(err.Error(), "shared controller") {
		t.Errorf("shared controller with Workers=4 accepted: %v", err)
	}
}
