GO ?= go

.PHONY: build test test-short check vet fmt table1 fig5bounds

build:
	$(GO) build ./...

# Fast inner loop: skips the chaos campaign and other -short-gated tests.
test-short:
	$(GO) test -short ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	gofmtout=$$(gofmt -l .); if [ -n "$$gofmtout" ]; then echo "gofmt needed:"; echo "$$gofmtout"; exit 1; fi

# The full gate: vet plus the complete test suite (chaos campaign included)
# under the race detector.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

table1:
	$(GO) run ./cmd/emn-faultinject -n 10000

fig5bounds:
	$(GO) run ./cmd/emn-bounds -iters 20
