GO ?= go

.PHONY: build test test-short test-campaign test-fleet test-fsc check vet fmt lint docs-check fuzz-smoke bench bench-smoke table1 fig5bounds

build:
	$(GO) build ./...

# Fast inner loop: skips the chaos campaign and other -short-gated tests.
test-short:
	$(GO) test -short ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	gofmtout=$$(gofmt -l .); if [ -n "$$gofmtout" ]; then echo "gofmt needed:"; echo "$$gofmtout"; exit 1; fi

# Static analysis beyond vet. staticcheck is not vendored; CI installs it,
# and locally the target degrades to a notice instead of failing the build.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; fi

# Docs gate: every relative markdown link must resolve, every flag defined
# by every cmd/* binary must appear in README's CLI reference, and every
# registered metric family must appear in README's metrics table.
docs-check:
	sh scripts/check-links.sh
	sh scripts/check-flags.sh
	sh scripts/check-metrics.sh

# Campaign-engine equality, determinism, and partial-result tests under the
# race detector — the fast gate for changes to internal/sim.
test-campaign:
	$(GO) test -race -run 'Unified|Parallel|Campaign|Sequential' ./internal/sim/

# Fleet and chaos suite under the race detector: ring/membership unit tests,
# server-side redirect/adoption tests, client failover, and the node-kill
# campaign — the fast gate for changes to the fleet path.
test-fleet:
	$(GO) test -race -run 'Fleet|Chaos' ./...
	$(GO) test -race ./internal/fleet/

# FSC-tier equality gate under the race detector: compiled-controller
# campaigns must match the tree's mean cost exactly on EMN and on random
# models — the fast gate for changes to the FSC compiler or decider.
test-fsc:
	$(GO) test -race -run 'FSC' ./internal/controller/ ./internal/sim/

# Fuzz smoke: a few seconds per fuzz target over the trust boundaries —
# checkpoint EpisodeState JSON decode, log-record framing, and the compiled
# FSC artifact decoder. Corpus additions land under the packages'
# testdata/fuzz/ directories.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzEpisodeStateDecode -fuzztime=10s ./internal/server
	$(GO) test -run='^$$' -fuzz=FuzzLogRecordDecode -fuzztime=10s ./internal/server
	$(GO) test -run='^$$' -fuzz=FuzzFSCDecode -fuzztime=10s ./internal/controller

# The full gate: formatting, vet, the docs gate, the complete test suite
# (chaos campaign included) under the race detector, the FSC
# campaign-equality gate, and the fuzz smoke.
check: fmt
	$(GO) vet ./...
	$(MAKE) docs-check
	$(GO) test -race ./...
	$(MAKE) test-fsc
	$(MAKE) fuzz-smoke

# Benchmark smoke: short measurements diffed against the committed baseline.
# Hard-fails, but only on regressions that reproduce in both measurement
# passes (-runs 2) — single-pass noise on shared runners is exonerated.
bench-smoke:
	$(GO) run ./cmd/bench -mintime 50ms -out /tmp/bench_smoke.json -compare BENCH_campaign.json -runs 2

# Measure the campaign engine's hot paths on EMN and write the results as
# machine-readable JSON (schema bpomdp.bench/v1; see DESIGN.md).
bench:
	$(GO) run ./cmd/bench -out BENCH_campaign.json
	@echo "wrote BENCH_campaign.json"

table1:
	$(GO) run ./cmd/emn-faultinject -n 10000

fig5bounds:
	$(GO) run ./cmd/emn-bounds -iters 20
