package main

import (
	"os"
	"path/filepath"
	"testing"

	"bpomdp/internal/obs"
)

// writeSpans writes a minimal single-episode span file and returns its path.
func writeSpans(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "n1.spans")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := obs.NewSpanWriter(f)
	ms := int64(1e6)
	for _, rec := range []obs.SpanRecord{
		{TraceID: "ck-1", Node: "client", Kind: obs.SpanClientCall, Start: 0, Duration: 10 * ms, Op: "decide"},
		{TraceID: "ck-1", Node: "client", Kind: obs.SpanClientAttempt, Start: 0, Duration: 9 * ms, Op: "decide"},
		{TraceID: "ck-1", Node: "n1", Kind: obs.SpanServerDecide, Start: 2 * ms, Duration: 5 * ms, Episode: 7, Status: 200, Tier: "tree"},
	} {
		rec := rec
		if err := w.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

func TestRunSummaryAndEpisodeLookup(t *testing.T) {
	path := writeSpans(t)
	if err := run([]string{path}); err != nil {
		t.Fatalf("summary: %v", err)
	}
	if err := run([]string{"-timelines", path}); err != nil {
		t.Fatalf("timelines: %v", err)
	}
	if err := run([]string{"-json", path}); err != nil {
		t.Fatalf("json: %v", err)
	}
	// Episode lookup works by trace id and by numeric server episode id.
	if err := run([]string{"-episode", "ck-1", path}); err != nil {
		t.Fatalf("by trace id: %v", err)
	}
	if err := run([]string{"-episode", "7", "-json", path}); err != nil {
		t.Fatalf("by episode id: %v", err)
	}
	if err := run([]string{"-episode", "no-such", path}); err == nil {
		t.Error("unknown episode accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no span files accepted")
	}
	if err := run([]string{filepath.Join(t.TempDir(), "missing.spans")}); err == nil {
		t.Error("missing span file accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.spans")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{empty}); err == nil {
		t.Error("span-free input accepted")
	}
}
