// Command tracestats stitches bpomdp.span/v1 files from the nodes of a
// recovery fleet (recoverd -span-trace) and its clients into one causal
// timeline per episode, then reports where each recovery's wall-clock went:
// controller decisions (by tier), checkpoint fsyncs, redirect hops, retry
// backoff, adoption, and the network in between. It also verifies the
// timelines are causally connected — every redirect, adoption, and
// replication edge must point at a span that exists — and reports any
// orphaned edges.
//
// Usage:
//
//	tracestats n1.spans n2.spans n3.spans client.spans
//	tracestats -episode 3f9a… n*.spans     # one episode's full timeline
//	tracestats -json n*.spans              # machine-readable stitch
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"

	"bpomdp/internal/tracestats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracestats:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracestats", flag.ContinueOnError)
	var (
		episode  = fs.String("episode", "", "render one episode's timeline: its trace id (clientKey) or numeric episode id")
		jsonOut  = fs.Bool("json", false, "emit stitched timelines (or the selected episode) as JSON")
		timeline = fs.Bool("timelines", false, "render every episode's timeline, not just the summary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no span files given (recoverd -span-trace writes them)")
	}

	spans, err := tracestats.Load(fs.Args()...)
	if err != nil {
		return err
	}
	tls := tracestats.Stitch(spans)
	if len(tls) == 0 {
		return fmt.Errorf("no spans in %d file(s)", fs.NArg())
	}

	if *episode != "" {
		tl := findEpisode(tls, *episode)
		if tl == nil {
			return fmt.Errorf("episode %q not found in %d traced episodes", *episode, len(tls))
		}
		if *jsonOut {
			return emitJSON(tl)
		}
		fmt.Print(tl.Render())
		return nil
	}

	if *jsonOut {
		return emitJSON(struct {
			Summary  tracestats.Summary     `json:"summary"`
			Episodes []*tracestats.Timeline `json:"episodes"`
		}{tracestats.Summarize(tls), tls})
	}
	if *timeline {
		for _, tl := range tls {
			fmt.Print(tl.Render())
			fmt.Println()
		}
	}
	fmt.Print(tracestats.Summarize(tls).Render())
	return nil
}

// findEpisode matches by trace id first, then by numeric episode id.
func findEpisode(tls []*tracestats.Timeline, key string) *tracestats.Timeline {
	for _, tl := range tls {
		if tl.TraceID == key {
			return tl
		}
	}
	if id, err := strconv.ParseUint(key, 10, 64); err == nil {
		for _, tl := range tls {
			if tl.Episode == id {
				return tl
			}
		}
	}
	return nil
}

func emitJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
