// Command boundsrefine runs HSVI-style offline bound refinement over a
// recovery model and writes the refined lower-bound set (and optionally the
// paired sawtooth upper bound) as JSON artifacts recoverd and fsccompile can
// load.
//
// The refiner pairs the RA-Bound hyperplane set — optionally warmed by
// bootstrap episodes — with a QMDP-cornered sawtooth upper bound, explores
// beliefs forward from the initial belief by the gap-weighted HSVI rule, and
// backs up both bounds at every visited point until the root gap drops to
// -gap or the trial budget runs out. Tight bounds shrink the Max-Avg tree's
// effective work and drive compiled-FSC node gaps toward zero, widening the
// table-hit fast path at strict serving thresholds.
//
// Usage:
//
//	boundsrefine -model emn -bootstrap 10 -out bounds.json
//	boundsrefine -model my-system.json -gap 1e-9 -out bounds.json -upper-out upper.json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/emn"
	"bpomdp/internal/modelload"
	"bpomdp/internal/rng"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "boundsrefine:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("boundsrefine", flag.ContinueOnError)
	var (
		modelName = fs.String("model", "emn", `model: "emn", "twoserver", or a path to a model JSON`)
		top       = fs.Float64("top", emn.OperatorResponseTime, "operator response time t_op in seconds")
		bootstrap = fs.Int("bootstrap", 10, "bootstrap episodes to warm the lower bound before refining (0 = refine from the raw RA-Bound)")
		bootDepth = fs.Int("bootstrap-depth", 2, "tree depth during bootstrap")
		seed      = fs.Uint64("seed", 1, "bootstrap RNG seed")
		inPath    = fs.String("bounds", "", "load the lower-bound set from this JSON file instead of bootstrapping")
		gap       = fs.Float64("gap", 1e-6, "target root bound gap refinement converges to")
		trials    = fs.Int("trials", 0, "cap on exploration trials (0 = default)")
		depth     = fs.Int("depth", 0, "cap on per-trial exploration depth (0 = default)")
		out       = fs.String("out", "bounds.json", "write the refined lower-bound set here")
		upperOut  = fs.String("upper-out", "", "also write the refined sawtooth upper bound here (optional)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	rm, err := modelload.Load(*modelName)
	if err != nil {
		return err
	}
	prep, err := core.Prepare(rm, core.PrepareOptions{OperatorResponseTime: *top})
	if err != nil {
		return err
	}
	log.Printf("model %q: %d states, %d actions, %d observations; regime %s",
		*modelName, prep.Model.NumStates(), prep.Model.NumActions(), prep.Model.NumObservations(), prep.Regime)

	loaded := false
	if *inPath != "" {
		data, err := os.ReadFile(*inPath)
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
		if err == nil {
			if err := json.Unmarshal(data, prep.Set); err != nil {
				return fmt.Errorf("load bounds %s: %w", *inPath, err)
			}
			if prep.Set.NumStates() != prep.Model.NumStates() {
				return fmt.Errorf("bounds %s are over %d states, model has %d",
					*inPath, prep.Set.NumStates(), prep.Model.NumStates())
			}
			log.Printf("loaded %d bound vectors from %s", prep.Set.Size(), *inPath)
			loaded = true
		}
	}
	if !loaded && *bootstrap > 0 {
		start := time.Now()
		stats, err := prep.Bootstrap(*bootstrap, controller.VariantAverage, *bootDepth, rng.New(*seed))
		if err != nil {
			return err
		}
		last := stats[len(stats)-1]
		log.Printf("bootstrapped %d episodes in %v: bound at uniform %.2f, %d vectors",
			*bootstrap, time.Since(start).Round(time.Millisecond), last.BoundAtUniform, last.Vectors)
	}

	rep, err := prep.RefineBounds(core.RefineConfig{Epsilon: *gap, MaxTrials: *trials, MaxDepth: *depth})
	if err != nil {
		return fmt.Errorf("refine: %w", err)
	}
	log.Printf("refined in %v: root gap %.6g -> %.6g over %d trials (%d backups, +%d planes, +%d points, deepest %d, converged=%v)",
		rep.Wall.Round(time.Millisecond), rep.InitialGap, rep.FinalGap,
		rep.Trials, rep.Backups, rep.PlanesAdded, rep.PointsAdded, rep.DeepestDepth, rep.Converged)
	if !rep.Converged {
		log.Printf("warning: trial budget exhausted before the gap target; rerun with -trials/-depth to tighten further")
	}

	data, err := json.Marshal(prep.Set)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	log.Printf("wrote %d lower-bound planes to %s", prep.Set.Size(), *out)

	if *upperOut != "" {
		data, err := json.Marshal(prep.Upper)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*upperOut, data, 0o644); err != nil {
			return err
		}
		log.Printf("wrote upper bound (%d points) to %s", prep.Upper.NumPoints(), *upperOut)
	}
	return nil
}
