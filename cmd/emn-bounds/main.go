// Command emn-bounds regenerates Figures 5(a) and 5(b) of the paper: the
// iterative improvement of the RA-Bound on the EMN model during the
// bootstrapping phase, for both the "Random" and "Average" variants. It
// prints the upper bound on recovery cost at the uniform belief (5a) and
// the number of bound vectors (5b) per iteration.
//
// Usage:
//
//	emn-bounds -iters 20 -seed 1
//	emn-bounds -iters 50 -csv > fig5.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"bpomdp/internal/emn"
	"bpomdp/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "emn-bounds:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("emn-bounds", flag.ContinueOnError)
	var (
		iters   = fs.Int("iters", 20, "bootstrap iterations (paper: 20)")
		seed    = fs.Uint64("seed", 1, "root RNG seed")
		depth   = fs.Int("depth", 1, "tree depth during bootstrap (paper: 1)")
		asCSV   = fs.Bool("csv", false, "emit CSV instead of a table")
		freeMon = fs.Bool("free-monitors", false, "make monitor sweeps free (ablation)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := experiments.Fig5(experiments.Fig5Config{
		Iterations: *iters,
		Seed:       *seed,
		Depth:      *depth,
		EMN:        emn.Config{FreeMonitors: *freeMon},
	})
	if err != nil {
		return err
	}
	if *asCSV {
		fmt.Print(res.CSV())
		return nil
	}
	fmt.Printf("Figure 5: iterative lower-bound improvement on EMN (seed %d, depth %d)\n", *seed, *depth)
	fmt.Println("5(a): upper bound on cost at the uniform belief; 5(b): bound vectors")
	fmt.Println()
	fmt.Print(res.Render())
	return nil
}
