package main

import "testing"

func TestRunTable(t *testing.T) {
	if testing.Short() {
		t.Skip("EMN bootstrap in -short mode")
	}
	if err := run([]string{"-iters", "3", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("EMN bootstrap in -short mode")
	}
	if err := run([]string{"-iters", "2", "-csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag accepted")
	}
}
