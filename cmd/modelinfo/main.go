// Command modelinfo inspects a recovery model: it validates the paper's
// Conditions 1 and 2, diagnoses Property 1(a) free actions, classifies the
// recovery-notification regime, computes the RA-Bound, shows which of the
// literature's comparison bounds diverge, and reports the QMDP upper-bound
// gap. It can also export the built-in models as JSON.
//
// Usage:
//
//	modelinfo -model emn
//	modelinfo -model twoserver -top 10
//	modelinfo -model my-system.json -top 21600
//	modelinfo -model emn -export emn.json
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"bpomdp/internal/bounds"
	"bpomdp/internal/core"
	"bpomdp/internal/emn"
	"bpomdp/internal/linalg"
	"bpomdp/internal/modelload"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "modelinfo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("modelinfo", flag.ContinueOnError)
	var (
		modelName = fs.String("model", "emn", `model: "emn", "twoserver", or a path to a model JSON`)
		top       = fs.Float64("top", emn.OperatorResponseTime, "operator response time t_op in seconds")
		export    = fs.String("export", "", "write the model JSON to this path and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	rm, err := loadModel(*modelName)
	if err != nil {
		return err
	}
	if *export != "" {
		data, err := pomdp.MarshalModel(rm.POMDP)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*export, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes)\n", *export, len(data))
		return nil
	}
	return report(os.Stdout, rm, *top)
}

func loadModel(name string) (*core.RecoveryModel, error) {
	return modelload.Load(name)
}

func report(w *os.File, rm *core.RecoveryModel, top float64) error {
	p := rm.POMDP
	fmt.Fprintf(w, "states: %d, actions: %d, observations: %d\n",
		p.NumStates(), p.NumActions(), p.NumObservations())

	if err := rm.Validate(); err != nil {
		fmt.Fprintf(w, "validation: FAILED: %v\n", err)
		return nil
	}
	fmt.Fprintln(w, "validation: OK (Condition 1: Sφ reachable from every state; Condition 2: rewards ≤ 0)")

	if free := rm.FreeActions(); len(free) == 0 {
		fmt.Fprintln(w, "Property 1(a): OK (no free actions outside Sφ)")
	} else {
		fmt.Fprintf(w, "Property 1(a): %d free (state, action) pairs — termination relies on the a_T tie-break, e.g. (%s, %s)\n",
			len(free), p.M.StateName(free[0].State), p.M.ActionName(free[0].Action))
	}

	hasNotif, err := rm.HasRecoveryNotification()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "recovery notification: %v\n", hasNotif)

	prep, err := core.Prepare(rm, core.PrepareOptions{OperatorResponseTime: top})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "regime: %s (t_op = %.0fs)\n\n", prep.Regime, top)

	upper, err := bounds.QMDP(prep.Model, bounds.Options{})
	if err != nil {
		return err
	}
	t := stats.NewTable("State", "RA-Bound", "QMDP upper", "Gap")
	for s := 0; s < prep.Model.NumStates(); s++ {
		t.AddRow(prep.Model.M.StateName(s),
			fmt.Sprintf("%.2f", prep.RA[s]),
			fmt.Sprintf("%.2f", upper[s]),
			fmt.Sprintf("%.2f", upper[s]-prep.RA[s]))
	}
	fmt.Fprint(w, t.String())

	fmt.Fprintln(w, "\ncomparison bounds (undiscounted):")
	if _, err := bounds.BIPOMDP(prep.Model, bounds.Options{Solver: linalg.FixedPointOptions{MaxIter: 20000}}); err != nil {
		if errors.Is(err, bounds.ErrUnbounded) {
			fmt.Fprintln(w, "  BI-POMDP: diverges (as the paper predicts for recovery models)")
		} else {
			return err
		}
	} else {
		fmt.Fprintln(w, "  BI-POMDP: finite")
	}
	bp, err := bounds.BlindPolicy(prep.Model, bounds.Options{Solver: linalg.FixedPointOptions{MaxIter: 20000}})
	switch {
	case errors.Is(err, bounds.ErrUnbounded):
		fmt.Fprintln(w, "  blind policy: every action diverges")
	case err != nil:
		return err
	default:
		fmt.Fprintf(w, "  blind policy: %d/%d actions finite (%d diverge)\n",
			len(bp.Planes), prep.Model.NumActions(), len(bp.Diverged))
	}
	return nil
}
