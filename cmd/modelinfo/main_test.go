package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunTwoServer(t *testing.T) {
	if err := run([]string{"-model", "twoserver", "-top", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunEMN(t *testing.T) {
	if testing.Short() {
		t.Skip("EMN bound solves in -short mode")
	}
	if err := run([]string{"-model", "emn"}); err != nil {
		t.Fatal(err)
	}
}

func TestExportAndReload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "two.json")
	if err := run([]string{"-model", "twoserver", "-export", path}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("export missing: %v", err)
	}
	// The exported model round-trips through the generic JSON loader.
	if err := run([]string{"-model", path, "-top", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownModel(t *testing.T) {
	if err := run([]string{"-model", "/no/such/file.json"}); err == nil {
		t.Error("missing model file accepted")
	}
}

func TestLoadModelRejectsNoNullState(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	data := `{"states":["s"],"actions":["go"],"observations":["o"],
		"transitions":[{"action":"go","from":"s","to":"s","prob":1}],
		"observationProbs":[{"action":"go","state":"s","obs":"o","prob":1}],
		"rewards":[]}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadModel(path); err == nil {
		t.Error("model without a null state accepted")
	}
}
