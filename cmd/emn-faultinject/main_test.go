package main

import "testing"

func TestRunTinyCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("EMN campaign in -short mode")
	}
	err := run([]string{"-n", "3", "-algos", "most-likely,oracle", "-seed", "2"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadAlgorithm(t *testing.T) {
	if err := run([]string{"-n", "1", "-algos", "deep-blue"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" a, ,b,")
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("splitList = %v", got)
	}
}
