// Command emn-faultinject regenerates Table 1 of the paper: a fault-
// injection campaign on the EMN e-commerce model comparing the bounded
// controller against the most-likely, heuristic (depths 1–3), and oracle
// controllers, reporting per-fault averages of cost, recovery time,
// residual time, algorithm time, recovery actions and monitor calls.
//
// Usage:
//
//	emn-faultinject -n 10000 -seed 1
//	emn-faultinject -n 1000 -algos bounded,heuristic-2,oracle
//	emn-faultinject -n 1000 -all-faults -free-monitors
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bpomdp/internal/emn"
	"bpomdp/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "emn-faultinject:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("emn-faultinject", flag.ContinueOnError)
	var (
		episodes  = fs.Int("n", 1000, "fault injections per algorithm (paper: 10000)")
		seed      = fs.Uint64("seed", 1, "root RNG seed")
		algos     = fs.String("algos", strings.Join(experiments.DefaultAlgorithms(), ","), "comma-separated algorithms to run")
		bootRuns  = fs.Int("bootstrap-runs", 10, "bootstrap episodes for the bounded controller (paper: 10)")
		bootDepth = fs.Int("bootstrap-depth", 2, "tree depth during bootstrap (paper: 2)")
		depth     = fs.Int("depth", 1, "bounded controller tree depth (paper: 1)")
		termProb  = fs.Float64("termprob", 0.9999, "termination probability for most-likely/heuristic (paper: 0.9999)")
		allFaults = fs.Bool("all-faults", false, "inject all fault classes instead of zombies only")
		monCost   = fs.Float64("monitor-cost", 0, "per-sweep capacity cost (0 = default)")
		freeMon   = fs.Bool("free-monitors", false, "make monitor sweeps free (violates Property 1(a); ablation)")
		compFP    = fs.Float64("component-fp", 0, "component monitor false-positive rate")
		pathFP    = fs.Float64("path-fp", 0, "path monitor false-positive rate")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.Table1Config{
		Episodes:               *episodes,
		Seed:                   *seed,
		Algorithms:             splitList(*algos),
		BootstrapRuns:          *bootRuns,
		BootstrapDepth:         *bootDepth,
		BoundedDepth:           *depth,
		TerminationProbability: *termProb,
		AllFaults:              *allFaults,
		EMN: emn.Config{
			MonitorCost:        *monCost,
			FreeMonitors:       *freeMon,
			ComponentMonitorFP: *compFP,
			PathMonitorFP:      *pathFP,
		},
	}
	res, err := experiments.Table1(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("Table 1: per-fault averages over %d injections (seed %d)\n\n", *episodes, *seed)
	fmt.Print(res.Render())
	return nil
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
