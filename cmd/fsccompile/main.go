// Command fsccompile compiles a bounded recovery controller into a
// finite-state controller artifact (schema bpomdp.fsc/v1) that recoverd and
// the simulator can serve as a table-lookup fast path.
//
// The compiler loads a recovery model, warms the RA-Bound with bootstrap
// episodes (or loads a previously saved bound set), and then runs the exact
// Max-Avg controller over the belief space reachable from the initial
// belief, recording each visited belief's decision, its compile-time bound
// gap, and its per-observation successor edges.
//
// Usage:
//
//	fsccompile -model emn -bootstrap 10 -depth 1 -out emn.fsc
//	fsccompile -model my-system.json -bounds bounds.json -out my.fsc
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/emn"
	"bpomdp/internal/modelload"
	"bpomdp/internal/rng"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fsccompile:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fsccompile", flag.ContinueOnError)
	var (
		modelName  = fs.String("model", "emn", `model: "emn", "twoserver", or a path to a model JSON`)
		top        = fs.Float64("top", emn.OperatorResponseTime, "operator response time t_op in seconds")
		bootstrap  = fs.Int("bootstrap", 10, "bootstrap episodes to warm the bound before compiling")
		bootDepth  = fs.Int("bootstrap-depth", 2, "tree depth during bootstrap")
		depth      = fs.Int("depth", 1, "tree depth the compiled decisions are computed at (must match serving depth for exactness)")
		seed       = fs.Uint64("seed", 1, "bootstrap RNG seed")
		boundsPath = fs.String("bounds", "", "load the bound set from this JSON file instead of bootstrapping (and save it back after bootstrap when it does not exist)")
		maxNodes   = fs.Int("max-nodes", 0, "cap on compiled FSC nodes (0 = default)")
		improve    = fs.Bool("improve", false, "keep improving the bound during compilation (tighter gaps, but served decisions are then only mean-cost-equivalent, not per-decision identical, to a tree over the frozen set)")
		out        = fs.String("out", "model.fsc", "write the compiled artifact here")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	rm, err := modelload.Load(*modelName)
	if err != nil {
		return err
	}
	prep, err := core.Prepare(rm, core.PrepareOptions{OperatorResponseTime: *top})
	if err != nil {
		return err
	}
	log.Printf("model %q: %d states, %d actions, %d observations; regime %s",
		*modelName, prep.Model.NumStates(), prep.Model.NumActions(), prep.Model.NumObservations(), prep.Regime)

	loaded := false
	if *boundsPath != "" {
		if data, err := os.ReadFile(*boundsPath); err == nil {
			if err := json.Unmarshal(data, prep.Set); err != nil {
				return fmt.Errorf("load bounds %s: %w", *boundsPath, err)
			}
			if prep.Set.NumStates() != prep.Model.NumStates() {
				return fmt.Errorf("bounds %s are over %d states, model has %d",
					*boundsPath, prep.Set.NumStates(), prep.Model.NumStates())
			}
			log.Printf("loaded %d bound vectors from %s", prep.Set.Size(), *boundsPath)
			loaded = true
		} else if !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	if !loaded && *bootstrap > 0 {
		start := time.Now()
		stats, err := prep.Bootstrap(*bootstrap, controller.VariantAverage, *bootDepth, rng.New(*seed))
		if err != nil {
			return err
		}
		last := stats[len(stats)-1]
		log.Printf("bootstrapped %d episodes in %v: bound at uniform %.2f, %d vectors",
			*bootstrap, time.Since(start).Round(time.Millisecond), last.BoundAtUniform, last.Vectors)
		if *boundsPath != "" {
			data, err := json.Marshal(prep.Set)
			if err != nil {
				return err
			}
			if err := os.WriteFile(*boundsPath, data, 0o644); err != nil {
				return err
			}
			log.Printf("saved bound set to %s", *boundsPath)
		}
	}

	start := time.Now()
	fsc, err := prep.CompileFSC(core.FSCConfig{Depth: *depth, MaxNodes: *maxNodes, Improve: *improve})
	if err != nil {
		return err
	}
	log.Printf("compiled %d nodes, %d edges (%d missing) in %v: max bound gap %.6g",
		fsc.NumNodes(), fsc.NumEdges(), fsc.MissingEdges(), time.Since(start).Round(time.Millisecond), fsc.MaxGap())

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := fsc.Encode(f); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", *out, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	info, err := os.Stat(*out)
	if err != nil {
		return err
	}
	log.Printf("wrote %s (%d bytes, schema %s)", *out, info.Size(), controller.FSCSchema)
	return nil
}
