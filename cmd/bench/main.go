// Command bench measures the hot paths of the unified campaign engine on
// the EMN model and writes the results as machine-readable JSON
// (BENCH_campaign.json by default) so CI and benchstat-style tooling can
// track regressions without scraping `go test -bench` text output.
//
// Reported benchmarks:
//
//   - campaign_sequential / campaign_parallel — full fault-injection
//     campaigns through sim.RunCampaignOpts with the paper's bounded
//     controller (episodes/sec, ns/episode, allocs/episode)
//   - belief_update — pomdp.UpdateInto with reused buffers, the kernel the
//     controller runs on every observation (ns/op, allocs/op, B/op)
//   - belief_update_alloc — the allocating pomdp.Update path, for comparison
//   - gs_sweep — one Gauss-Seidel/SOR sweep of the RA-Bound iteration
//     (linalg.SORKernel.Sweep on the Eq. 5 uniform chain)
//   - ra_solve — the full RA-Bound fixed-point solve (bounds.RA)
//   - set_value_batch — bounds.Set.ValueBatch over a batch of beliefs with a
//     preallocated output slice (the batched engine's leaf evaluation)
//   - batch_decide — controller.Bounded.DecideBatch over the same batch with
//     reused decision buffers (the full batched Max-Avg expansion)
//   - fsc_decide — controller.FSCDecider.DecideBatch over a batch of
//     compiled-table beliefs (the table-lookup fast path; compare per
//     decision against batch_decide for the compilation speedup)
//   - campaign_fsc — the batched campaign decided by the tiered FSC decider
//     (table hits plus tree fallbacks), same figures as campaign_batched
//   - bounds_refine — one full HSVI-style offline bound-refinement run to
//     convergence on the bootstrapped EMN set (core.Prepared.RefineBounds)
//   - campaign_tiered_seed_bounds / campaign_tiered_refined_bounds — the
//     bound-quality pair: tiered FSC+tree campaigns at the strictest gap
//     threshold (0) over the bootstrapped seed set vs the HSVI-refined set;
//     their tree_nodes_expanded and ns_per_decision figures quantify how
//     much online tree work tighter offline bounds remove
//   - campaign_batched — the campaign engine in batched stepping mode
//     (CampaignOptions.BatchSize), same figures as campaign_sequential
//   - campaign_seq_w{1,2,4,8} / campaign_batched_w{1,2,4,8} — the
//     worker-scaling matrix: both stepping modes at 1/2/4/8 workers, so
//     scaling shape (not just single-point throughput) is tracked
//
// With -compare the report is also diffed against a previously committed
// baseline: any benchmark whose ns/op regresses by more than -threshold, or
// whose allocs/op grow at all, fails the run (exit 1) unless -report-only is
// set. With -runs N a candidate regression must reproduce in N independent
// measurement passes to fail — one clean pass exonerates it — which is what
// lets noisy CI runners hard-fail instead of report-only. This is the CI
// benchmark gate.
//
// Usage:
//
//	go run ./cmd/bench -out BENCH_campaign.json -mintime 1s
//	go run ./cmd/bench -mintime 50ms -out /tmp/b.json -compare BENCH_campaign.json -runs 2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"bpomdp/internal/arch"
	"bpomdp/internal/bounds"
	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/emn"
	"bpomdp/internal/linalg"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
	"bpomdp/internal/sim"
)

// benchSchema identifies the BENCH_campaign.json document format.
const benchSchema = "bpomdp.bench/v1"

// scalingWorkers is the worker-count matrix measured for both stepping
// modes (campaign_seq_wN / campaign_batched_wN).
var scalingWorkers = []int{1, 2, 4, 8}

// Report is the BENCH_campaign.json document ("bpomdp.bench/v1").
type Report struct {
	Schema    string           `json:"schema"`
	Timestamp string           `json:"timestamp"`
	GoVersion string           `json:"go_version"`
	GOOS      string           `json:"goos"`
	GOARCH    string           `json:"goarch"`
	NumCPU    int              `json:"num_cpu"`
	Model     ModelInfo        `json:"model"`
	Bench     map[string]Entry `json:"benchmarks"`
}

// ModelInfo identifies the benchmarked model.
type ModelInfo struct {
	Name         string `json:"name"`
	States       int    `json:"states"`
	Actions      int    `json:"actions"`
	Observations int    `json:"observations"`
}

// Entry is one benchmark's result. Campaign entries additionally carry
// per-episode throughput figures.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
	// Campaign-only fields.
	Workers        int     `json:"workers,omitempty"`
	Episodes       int     `json:"episodes_per_campaign,omitempty"`
	EpisodesPerSec float64 `json:"episodes_per_sec,omitempty"`
	NsPerEpisode   float64 `json:"ns_per_episode,omitempty"`
	AllocsPerEp    int64   `json:"allocs_per_episode,omitempty"`
	// Bound-quality fields (campaign_tiered_* entries): decision count and
	// Max-Avg tree nodes expanded per decision on a fixed-seed profiling
	// campaign, plus the per-decision cost derived from the timed runs.
	Decisions         int     `json:"decisions,omitempty"`
	NsPerDecision     float64 `json:"ns_per_decision,omitempty"`
	TreeNodesExpanded float64 `json:"tree_nodes_expanded,omitempty"`
}

func entryOf(r testing.BenchmarkResult) Entry {
	return Entry{
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
}

func main() {
	testing.Init()
	out := flag.String("out", "BENCH_campaign.json", "output JSON path (- for stdout)")
	mintime := flag.Duration("mintime", time.Second, "minimum measuring time per benchmark")
	episodes := flag.Int("episodes", 64, "episodes per campaign iteration")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "workers for the parallel campaign benchmark")
	compare := flag.String("compare", "", "baseline BENCH_campaign.json to diff against")
	reportOnly := flag.Bool("report-only", false, "with -compare, print regressions but do not fail")
	threshold := flag.Float64("threshold", 0.30, "with -compare, fractional ns/op regression tolerated before failing")
	runs := flag.Int("runs", 1, "with -compare, measurement passes a regression must appear in to fail; passes after a clean one are skipped")
	flag.Parse()

	if err := flag.Set("test.benchtime", mintime.String()); err != nil {
		fatal(err)
	}
	rep, err := run(*episodes, *workers)
	if err != nil {
		fatal(err)
	}
	rep.Timestamp = time.Now().UTC().Format(time.RFC3339)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		_, _ = os.Stdout.Write(buf)
	} else {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Bench))
		names := []string{"campaign_sequential", "campaign_batched", "campaign_fsc",
			"campaign_tiered_seed_bounds", "campaign_tiered_refined_bounds", "bounds_refine", "campaign_parallel"}
		for _, w := range scalingWorkers {
			names = append(names, fmt.Sprintf("campaign_seq_w%d", w), fmt.Sprintf("campaign_batched_w%d", w))
		}
		names = append(names, "belief_update", "gs_sweep", "ra_solve", "set_value_batch", "batch_decide", "fsc_decide")
		for _, name := range names {
			e, ok := rep.Bench[name]
			if !ok {
				continue
			}
			if e.EpisodesPerSec > 0 {
				fmt.Printf("  %-22s %10.1f episodes/sec  %8d allocs/episode\n", name, e.EpisodesPerSec, e.AllocsPerEp)
			} else {
				fmt.Printf("  %-22s %10.0f ns/op  %8d allocs/op  %8d B/op\n", name, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp)
			}
		}
	}

	if *compare != "" {
		old, err := loadReport(*compare)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("comparison against %s (threshold %+.0f%% ns/op, any alloc growth):\n", *compare, *threshold*100)
		printComparison(os.Stdout, old, rep)
		regressions := compareReports(old, rep, *threshold)
		// Noise tolerance: a candidate regression must reproduce in every
		// remaining measurement pass to count. A clean pass clears everything,
		// so the extra passes only run while candidates are alive.
		for pass := 2; pass <= *runs && len(regressions) > 0; pass++ {
			fmt.Printf("%d candidate regression(s); re-measuring (pass %d/%d)\n", len(regressions), pass, *runs)
			rerun, err := run(*episodes, *workers)
			if err != nil {
				fatal(err)
			}
			regressions = intersectRegressions(regressions, compareReports(old, rerun, *threshold))
		}
		if len(regressions) > 0 {
			fmt.Printf("%d regression(s) reproduced in all %d pass(es):\n", len(regressions), *runs)
			for _, r := range regressions {
				fmt.Println("  " + r.String())
			}
			if !*reportOnly {
				os.Exit(1)
			}
		} else {
			fmt.Println("no regressions")
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}

// run builds the EMN model once and measures every benchmark against it.
func run(episodes, workers int) (*Report, error) {
	compiled, err := emn.Build(emn.Config{})
	if err != nil {
		return nil, err
	}
	base := compiled.Recovery.POMDP
	rep := &Report{
		Schema:    benchSchema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Model: ModelInfo{
			Name:         "emn",
			States:       base.NumStates(),
			Actions:      base.NumActions(),
			Observations: base.NumObservations(),
		},
		Bench: map[string]Entry{},
	}

	prep, err := core.Prepare(compiled.Recovery, core.PrepareOptions{
		OperatorResponseTime: emn.OperatorResponseTime,
	})
	if err != nil {
		return nil, err
	}
	if _, err := prep.Bootstrap(10, controller.VariantAverage, 1, rng.New(3)); err != nil {
		return nil, err
	}

	if err := benchBeliefUpdate(rep, prep); err != nil {
		return nil, err
	}
	if err := benchSolver(rep, compiled); err != nil {
		return nil, err
	}
	if err := benchBatch(rep, prep); err != nil {
		return nil, err
	}
	if err := benchFSC(rep, compiled, prep, episodes); err != nil {
		return nil, err
	}
	if err := benchBounds(rep, compiled, episodes); err != nil {
		return nil, err
	}
	if err := benchCampaigns(rep, compiled, prep, episodes, workers); err != nil {
		return nil, err
	}
	return rep, nil
}

// benchBounds measures offline HSVI bound refinement and its effect on
// online tree work: two tiered (FSC table + tree fallback) campaigns at the
// strictest gap threshold, one over the bootstrapped seed set and one over
// the refined set. Refinement drives compile-time node gaps to ~0, so the
// refined variant serves most decisions from the table and expands far fewer
// Max-Avg tree nodes per decision — tree_nodes_expanded and ns_per_decision
// are the bound-quality figures the ROADMAP asks the gate to watch.
func benchBounds(rep *Report, compiled *arch.Compiled, episodes int) error {
	seedPrep := func() (*core.Prepared, error) {
		p, err := core.Prepare(compiled.Recovery, core.PrepareOptions{
			OperatorResponseTime: emn.OperatorResponseTime,
		})
		if err != nil {
			return nil, err
		}
		if _, err := p.Bootstrap(10, controller.VariantAverage, 1, rng.New(3)); err != nil {
			return nil, err
		}
		return p, nil
	}

	// bounds_refine: one full offline refinement run to convergence. Each
	// iteration refines a fresh bootstrapped set; the rebuild is excluded
	// from the timed region.
	rep.Bench["bounds_refine"] = entryOf(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			p, err := seedPrep()
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := p.RefineBounds(core.RefineConfig{}); err != nil {
				b.Fatal(err)
			}
		}
	}))

	runner, err := sim.NewRunner(compiled.Recovery, 20000)
	if err != nil {
		return err
	}
	faults := compiled.ZombieStates
	measure := func(p *core.Prepared) (Entry, error) {
		fsc, err := p.CompileFSC(core.FSCConfig{Depth: 1})
		if err != nil {
			return Entry{}, err
		}
		dec, err := p.NewFSCDecider(fsc, core.ControllerConfig{Depth: 1, CollectStats: true}, 0)
		if err != nil {
			return Entry{}, err
		}
		initial, err := p.InitialBelief()
		if err != nil {
			return Entry{}, err
		}
		factory := func() (controller.Controller, pomdp.Belief, error) {
			return dec, initial, nil
		}
		opts := sim.CampaignOptions{Workers: 1, WorkerFactory: factory, BatchSize: 16}
		// Decision-work profile from one fixed-seed campaign, outside the
		// timed region.
		profile, err := runner.RunCampaignOpts(nil, nil, faults, episodes, rng.New(0), opts)
		if err != nil {
			return Entry{}, err
		}
		if profile.Decisions == 0 {
			return Entry{}, fmt.Errorf("tiered profiling campaign recorded no decisions")
		}
		e := entryOf(testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := runner.RunCampaignOpts(nil, nil, faults, episodes, rng.New(uint64(i)), opts)
				if err != nil {
					b.Fatal(err)
				}
				if res.Episodes != episodes {
					b.Fatalf("campaign completed %d/%d episodes", res.Episodes, episodes)
				}
			}
		}))
		e.Workers = 1
		e.Episodes = episodes
		e.NsPerEpisode = e.NsPerOp / float64(episodes)
		e.EpisodesPerSec = 1e9 / e.NsPerEpisode
		e.AllocsPerEp = e.AllocsPerOp / int64(episodes)
		e.Decisions = profile.Decisions
		e.NsPerDecision = e.NsPerOp / float64(profile.Decisions)
		e.TreeNodesExpanded = float64(profile.TreeNodes) / float64(profile.Decisions)
		return e, nil
	}

	seed, err := seedPrep()
	if err != nil {
		return err
	}
	if rep.Bench["campaign_tiered_seed_bounds"], err = measure(seed); err != nil {
		return err
	}
	refined, err := seedPrep()
	if err != nil {
		return err
	}
	if _, err := refined.RefineBounds(core.RefineConfig{}); err != nil {
		return err
	}
	if rep.Bench["campaign_tiered_refined_bounds"], err = measure(refined); err != nil {
		return err
	}
	return nil
}

// benchFSC measures the compiled finite-state-controller fast path: batched
// decisions answered from the table (fsc_decide — the per-decision number to
// hold against batch_decide), and a full batched campaign decided by the
// tiered FSC decider (campaign_fsc). The table is compiled once outside the
// timed regions with a permissive gap threshold, so the campaign splits
// decisions across both tiers the way a deployed daemon would.
func benchFSC(rep *Report, compiled *arch.Compiled, prep *core.Prepared, episodes int) error {
	fsc, err := prep.CompileFSC(core.FSCConfig{Depth: 1})
	if err != nil {
		return err
	}
	dec, err := prep.NewFSCDecider(fsc, core.ControllerConfig{Depth: 1}, fsc.MaxGap()+1)
	if err != nil {
		return err
	}

	// The decision batch cycles through compiled-node beliefs: every decision
	// is a table hit, which is exactly the fast path's cost.
	const batch = 64
	beliefs := make([]pomdp.Belief, batch)
	for i := range beliefs {
		beliefs[i] = fsc.Node(i % fsc.NumNodes()).Belief
	}
	decisions := make([]controller.Decision, batch)
	if err := dec.DecideBatch(beliefs, decisions); err != nil {
		return err
	}
	rep.Bench["fsc_decide"] = entryOf(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := dec.DecideBatch(beliefs, decisions); err != nil {
				b.Fatal(err)
			}
		}
	}))

	runner, err := sim.NewRunner(compiled.Recovery, 20000)
	if err != nil {
		return err
	}
	initial, err := prep.InitialBelief()
	if err != nil {
		return err
	}
	faults := compiled.ZombieStates
	rep.Bench["campaign_fsc"] = func() Entry {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			factory := func() (controller.Controller, pomdp.Belief, error) {
				return dec, initial, nil
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := runner.RunCampaignOpts(nil, nil, faults, episodes, rng.New(uint64(i)), sim.CampaignOptions{
					Workers:       1,
					WorkerFactory: factory,
					BatchSize:     16,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Episodes != episodes {
					b.Fatalf("campaign completed %d/%d episodes", res.Episodes, episodes)
				}
			}
		})
		e := entryOf(r)
		e.Workers = 1
		e.Episodes = episodes
		e.NsPerEpisode = e.NsPerOp / float64(episodes)
		e.EpisodesPerSec = 1e9 / e.NsPerEpisode
		e.AllocsPerEp = e.AllocsPerOp / int64(episodes)
		return e
	}()
	return nil
}

// benchBatch measures the batched leaf evaluation (Set.ValueBatch over the
// packed plane slab) and the full batched Max-Avg expansion
// (Bounded.DecideBatch). Both run with preallocated output buffers — the
// campaign's steady state — so allocs/op should be zero.
func benchBatch(rep *Report, prep *core.Prepared) error {
	const batch = 64
	n := prep.Model.NumStates()
	stream := rng.New(7)
	beliefs := make([]pomdp.Belief, batch)
	for i := range beliefs {
		pi := make(pomdp.Belief, n)
		sum := 0.0
		for s := range pi {
			pi[s] = stream.Float64()
			sum += pi[s]
		}
		for s := range pi {
			pi[s] /= sum
		}
		beliefs[i] = pi
	}

	vals := make([]float64, batch)
	rep.Bench["set_value_batch"] = entryOf(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			vals = prep.Set.ValueBatch(beliefs, vals)
		}
	}))

	ctrl, err := prep.NewController(core.ControllerConfig{Depth: 1})
	if err != nil {
		return err
	}
	decisions := make([]controller.Decision, batch)
	// Warm once outside the timed region so the engine's per-level scratch is
	// sized before measurement.
	if err := ctrl.DecideBatch(beliefs, decisions); err != nil {
		return err
	}
	rep.Bench["batch_decide"] = entryOf(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := ctrl.DecideBatch(beliefs, decisions); err != nil {
				b.Fatal(err)
			}
		}
	}))
	return nil
}

// benchBeliefUpdate measures the Bayes update (Eq. 4) with reused buffers
// (the controller's steady-state path) and with per-call allocation.
func benchBeliefUpdate(rep *Report, prep *core.Prepared) error {
	sc := pomdp.NewScratch(prep.Model)
	pi, err := prep.InitialBelief()
	if err != nil {
		return err
	}
	obsAction := prep.Source.MonitorAction
	succs := prep.Model.Successors(sc, pi, obsAction)
	if len(succs) == 0 {
		return fmt.Errorf("no successors for the monitor action")
	}
	o := succs[0].Obs

	dst := make(pomdp.Belief, len(pi))
	rep.Bench["belief_update"] = entryOf(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := prep.Model.UpdateInto(sc, dst, pi, obsAction, o); err != nil {
				b.Fatal(err)
			}
		}
	}))
	rep.Bench["belief_update_alloc"] = entryOf(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := prep.Model.Update(sc, pi, obsAction, o); err != nil {
				b.Fatal(err)
			}
		}
	}))
	return nil
}

// benchSolver measures one SOR sweep of the RA-Bound iteration matrix and
// the complete Eq. 5 fixed-point solve.
func benchSolver(rep *Report, compiled *arch.Compiled) error {
	model, _, err := pomdp.WithTermination(compiled.Recovery.POMDP, pomdp.TerminationConfig{
		NullStates:           compiled.Recovery.NullStates,
		OperatorResponseTime: emn.OperatorResponseTime,
		RateReward:           compiled.Recovery.RateRewards,
	})
	if err != nil {
		return err
	}
	chain, reward, err := model.M.UniformChain()
	if err != nil {
		return err
	}
	kernel := linalg.NewSORKernel(chain)
	v := make(linalg.Vector, chain.Rows())
	rep.Bench["gs_sweep"] = entryOf(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			kernel.Sweep(v, reward, 1, 1)
		}
	}))
	rep.Bench["ra_solve"] = entryOf(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := bounds.RA(model, bounds.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}))
	return nil
}

// benchCampaigns measures full fault-injection campaigns through the unified
// engine, sequentially and with the requested worker count. Controllers are
// pooled outside the timed region (they are reusable across campaigns: every
// episode begins with Reset), so the numbers isolate the engine and episode
// loop.
func benchCampaigns(rep *Report, compiled *arch.Compiled, prep *core.Prepared, episodes, workers int) error {
	runner, err := sim.NewRunner(compiled.Recovery, 20000)
	if err != nil {
		return err
	}
	if workers < 1 {
		workers = 1
	}
	// The scaling matrix below needs a controller per worker up to its
	// largest rung, whatever -workers says.
	poolSize := workers
	for _, w := range scalingWorkers {
		if w > poolSize {
			poolSize = w
		}
	}
	pool := make([]controller.Controller, poolSize)
	initial, err := prep.InitialBelief()
	if err != nil {
		return err
	}
	for i := range pool {
		if pool[i], err = prep.NewController(core.ControllerConfig{Depth: 1}); err != nil {
			return err
		}
	}
	faults := compiled.ZombieStates

	campaign := func(b *testing.B, w int) {
		b.Helper()
		b.ReportAllocs()
		var next atomic.Uint64
		factory := func() (controller.Controller, pomdp.Belief, error) {
			idx := int(next.Add(1)-1) % len(pool)
			return pool[idx], initial, nil
		}
		// Exclude the closure setup from the measurement, so allocs/op does
		// not depend on the iteration count (short -mintime runs must match
		// the committed long-run baseline exactly).
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := runner.RunCampaignOpts(nil, nil, faults, episodes, rng.New(uint64(i)), sim.CampaignOptions{
				Workers:       w,
				WorkerFactory: factory,
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Episodes != episodes {
				b.Fatalf("campaign completed %d/%d episodes", res.Episodes, episodes)
			}
		}
	}
	finish := func(r testing.BenchmarkResult, w int) Entry {
		e := entryOf(r)
		e.Workers = w
		e.Episodes = episodes
		e.NsPerEpisode = e.NsPerOp / float64(episodes)
		e.EpisodesPerSec = 1e9 / e.NsPerEpisode
		e.AllocsPerEp = e.AllocsPerOp / int64(episodes)
		return e
	}
	rep.Bench["campaign_sequential"] = finish(testing.Benchmark(func(b *testing.B) { campaign(b, 1) }), 1)
	if workers > 1 {
		rep.Bench["campaign_parallel"] = finish(testing.Benchmark(func(b *testing.B) { campaign(b, workers) }), workers)
	}

	// Worker-scaling matrix: per-episode stepping and batched stepping at
	// 1/2/4/8 workers. On a single-core runner the rungs mostly measure
	// scheduling overhead, but the committed matrix lets multi-core machines
	// diff scaling shape, not just single-point throughput.
	batched := func(b *testing.B, w int) {
		b.Helper()
		b.ReportAllocs()
		var next atomic.Uint64
		factory := func() (controller.Controller, pomdp.Belief, error) {
			idx := int(next.Add(1)-1) % len(pool)
			return pool[idx], initial, nil
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := runner.RunCampaignOpts(nil, nil, faults, episodes, rng.New(uint64(i)), sim.CampaignOptions{
				Workers:       w,
				WorkerFactory: factory,
				BatchSize:     16,
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Episodes != episodes {
				b.Fatalf("campaign completed %d/%d episodes", res.Episodes, episodes)
			}
		}
	}
	for _, w := range scalingWorkers {
		w := w
		rep.Bench[fmt.Sprintf("campaign_seq_w%d", w)] = finish(testing.Benchmark(func(b *testing.B) { campaign(b, w) }), w)
		rep.Bench[fmt.Sprintf("campaign_batched_w%d", w)] = finish(testing.Benchmark(func(b *testing.B) { batched(b, w) }), w)
	}

	// Batched stepping: one worker advances a stripe of live episodes
	// through DecideBatch, sharing the Max-Avg tree expansion across them.
	batchCtrl, err := prep.NewController(core.ControllerConfig{Depth: 1})
	if err != nil {
		return err
	}
	rep.Bench["campaign_batched"] = finish(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		factory := func() (controller.Controller, pomdp.Belief, error) {
			return batchCtrl, initial, nil
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := runner.RunCampaignOpts(nil, nil, faults, episodes, rng.New(uint64(i)), sim.CampaignOptions{
				Workers:       1,
				WorkerFactory: factory,
				BatchSize:     16,
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Episodes != episodes {
				b.Fatalf("campaign completed %d/%d episodes", res.Episodes, episodes)
			}
		}
	}), 1)
	return nil
}
