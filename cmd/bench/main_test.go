package main

import (
	"encoding/json"
	"flag"
	"testing"
)

// TestRunProducesReport smoke-tests the harness with a tiny time budget: the
// report must carry every required benchmark, campaign throughput figures,
// and the zero-allocation belief-update hot path.
func TestRunProducesReport(t *testing.T) {
	old := flag.Lookup("test.benchtime").Value.String()
	if err := flag.Set("test.benchtime", "1ms"); err != nil {
		t.Fatal(err)
	}
	defer flag.Set("test.benchtime", old)

	rep, err := run(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "bpomdp.bench/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.Model.Name != "emn" || rep.Model.States == 0 {
		t.Errorf("model info incomplete: %+v", rep.Model)
	}
	for _, name := range []string{"belief_update", "belief_update_alloc", "gs_sweep", "ra_solve", "campaign_sequential", "campaign_parallel"} {
		e, ok := rep.Bench[name]
		if !ok {
			t.Errorf("missing benchmark %q", name)
			continue
		}
		if e.NsPerOp <= 0 || e.Iterations <= 0 {
			t.Errorf("%s: implausible result %+v", name, e)
		}
	}
	if e := rep.Bench["belief_update"]; e.AllocsPerOp != 0 {
		t.Errorf("belief_update allocates (%d allocs/op); the reuse path must be allocation-free", e.AllocsPerOp)
	}
	for _, name := range []string{"campaign_sequential", "campaign_parallel"} {
		e := rep.Bench[name]
		if e.EpisodesPerSec <= 0 || e.Episodes != 4 {
			t.Errorf("%s: campaign fields incomplete: %+v", name, e)
		}
	}
	if rep.Bench["campaign_parallel"].Workers != 2 {
		t.Errorf("parallel workers = %d, want 2", rep.Bench["campaign_parallel"].Workers)
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report not serializable: %v", err)
	}
}
