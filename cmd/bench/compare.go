package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Regression is one benchmark that got worse than the baseline allows.
type Regression struct {
	Name   string
	Metric string  // "ns_per_op", "allocs_per_op", or "allocs_per_episode"
	Old    float64 // baseline value
	New    float64 // current value
	Ratio  float64 // new/old (time metric only)
}

func (r Regression) String() string {
	switch r.Metric {
	case "allocs_per_op":
		return fmt.Sprintf("%s: allocs/op %v -> %v", r.Name, int64(r.Old), int64(r.New))
	case "allocs_per_episode":
		return fmt.Sprintf("%s: allocs/episode %v -> %v", r.Name, int64(r.Old), int64(r.New))
	}
	return fmt.Sprintf("%s: ns/op %.0f -> %.0f (%.2fx)", r.Name, r.Old, r.New, r.Ratio)
}

// loadReport reads a previously written BENCH_campaign.json.
func loadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("decode %s: %w", path, err)
	}
	if rep.Schema != benchSchema {
		return nil, fmt.Errorf("%s has schema %q, want %q", path, rep.Schema, benchSchema)
	}
	return &rep, nil
}

// compareReports diffs the current run against a baseline: a benchmark
// regresses when its ns/op exceeds the baseline by more than the fractional
// threshold, or when its allocations grow. For the micro kernels allocation
// counts are exact, so any allocs/op growth is a real regression, not noise.
// Campaign entries run whole fault-injection campaigns whose totals carry a
// little runtime jitter (first-iteration warmup, goroutine machinery), so
// they are gated on allocs/episode instead, with slack of one alloc/episode
// or 1% of the baseline, whichever is larger: arena'd paths sitting at a
// few allocs/episode keep the tight absolute gate, while unarena'd paths in
// the hundreds jitter by a few allocs from cold-iteration amortization and
// get proportional room instead of flaking.
// Benchmarks present in only one report are ignored — new benchmarks are not
// regressions, and retired ones have nothing to compare against.
func compareReports(old, cur *Report, threshold float64) []Regression {
	var out []Regression
	names := make([]string, 0, len(cur.Bench))
	for name := range cur.Bench {
		if _, ok := old.Bench[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		o, n := old.Bench[name], cur.Bench[name]
		if o.NsPerOp > 0 && n.NsPerOp > o.NsPerOp*(1+threshold) {
			out = append(out, Regression{
				Name: name, Metric: "ns_per_op",
				Old: o.NsPerOp, New: n.NsPerOp, Ratio: n.NsPerOp / o.NsPerOp,
			})
		}
		switch {
		case o.Episodes > 0 && n.Episodes > 0:
			slack := max(int64(1), o.AllocsPerEp/100)
			if n.AllocsPerEp > o.AllocsPerEp+slack {
				out = append(out, Regression{
					Name: name, Metric: "allocs_per_episode",
					Old: float64(o.AllocsPerEp), New: float64(n.AllocsPerEp),
				})
			}
		case n.AllocsPerOp > o.AllocsPerOp:
			out = append(out, Regression{
				Name: name, Metric: "allocs_per_op",
				Old: float64(o.AllocsPerOp), New: float64(n.AllocsPerOp),
			})
		}
	}
	return out
}

// intersectRegressions keeps the regressions of a that reproduce (same
// benchmark, same metric) in b — the noise-tolerance rule of the bench gate:
// a slowdown only fails the build when every measurement pass sees it. Of
// the two sightings it reports the milder one, so the failure message never
// overstates a reproducible regression.
func intersectRegressions(a, b []Regression) []Regression {
	byKey := make(map[string]Regression, len(b))
	for _, r := range b {
		byKey[r.Name+"\x00"+r.Metric] = r
	}
	var out []Regression
	for _, r := range a {
		other, ok := byKey[r.Name+"\x00"+r.Metric]
		if !ok {
			continue
		}
		if other.New < r.New {
			r = other
		}
		out = append(out, r)
	}
	return out
}

// printComparison renders a per-benchmark old/new table to w.
func printComparison(w io.Writer, old, cur *Report) {
	names := make([]string, 0, len(cur.Bench))
	for name := range cur.Bench {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-24s %14s %14s %8s %10s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs/op")
	for _, name := range names {
		n := cur.Bench[name]
		o, ok := old.Bench[name]
		if !ok {
			fmt.Fprintf(w, "%-24s %14s %14.0f %8s %10d\n", name, "-", n.NsPerOp, "new", n.AllocsPerOp)
			continue
		}
		delta := "0%"
		if o.NsPerOp > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(n.NsPerOp-o.NsPerOp)/o.NsPerOp)
		}
		allocs := fmt.Sprintf("%d", n.AllocsPerOp)
		if n.AllocsPerOp != o.AllocsPerOp {
			allocs = fmt.Sprintf("%d->%d", o.AllocsPerOp, n.AllocsPerOp)
		}
		fmt.Fprintf(w, "%-24s %14.0f %14.0f %8s %10s\n", name, o.NsPerOp, n.NsPerOp, delta, allocs)
	}
}
