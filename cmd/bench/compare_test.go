package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func report(bench map[string]Entry) *Report {
	return &Report{Schema: benchSchema, Bench: bench}
}

func TestCompareReports(t *testing.T) {
	old := report(map[string]Entry{
		"fast":    {NsPerOp: 100, AllocsPerOp: 2},
		"slow":    {NsPerOp: 100, AllocsPerOp: 2},
		"allocs":  {NsPerOp: 100, AllocsPerOp: 2},
		"retired": {NsPerOp: 100},
	})
	cur := report(map[string]Entry{
		"fast":   {NsPerOp: 90, AllocsPerOp: 2},  // improved
		"slow":   {NsPerOp: 150, AllocsPerOp: 2}, // +50% over a 30% threshold
		"allocs": {NsPerOp: 100, AllocsPerOp: 3}, // any alloc growth regresses
		"new":    {NsPerOp: 1e9, AllocsPerOp: 9}, // no baseline — ignored
	})
	regs := compareReports(old, cur, 0.30)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions %+v, want 2", len(regs), regs)
	}
	if regs[0].Name != "allocs" || regs[0].Metric != "allocs_per_op" {
		t.Errorf("first regression %+v, want allocs/allocs_per_op", regs[0])
	}
	if regs[1].Name != "slow" || regs[1].Metric != "ns_per_op" || regs[1].Ratio != 1.5 {
		t.Errorf("second regression %+v, want slow/ns_per_op at 1.5x", regs[1])
	}
}

func TestCompareReportsWithinThreshold(t *testing.T) {
	old := report(map[string]Entry{"b": {NsPerOp: 100, AllocsPerOp: 5}})
	cur := report(map[string]Entry{"b": {NsPerOp: 129, AllocsPerOp: 5}})
	if regs := compareReports(old, cur, 0.30); len(regs) != 0 {
		t.Errorf("29%% slowdown under a 30%% threshold flagged: %+v", regs)
	}
}

func TestLoadReport(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	data, err := json.Marshal(report(map[string]Entry{"b": {NsPerOp: 1}}))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(good, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := loadReport(good)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bench["b"].NsPerOp != 1 {
		t.Errorf("loaded report %+v", rep.Bench)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadReport(bad); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("wrong-schema report accepted: %v", err)
	}
	if _, err := loadReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestPrintComparison(t *testing.T) {
	old := report(map[string]Entry{"b": {NsPerOp: 100, AllocsPerOp: 5}})
	cur := report(map[string]Entry{
		"b":   {NsPerOp: 150, AllocsPerOp: 6},
		"new": {NsPerOp: 10, AllocsPerOp: 0},
	})
	var sb strings.Builder
	printComparison(&sb, old, cur)
	out := sb.String()
	for _, want := range []string{"+50.0%", "5->6", "new"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison table missing %q:\n%s", want, out)
		}
	}
}
