package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func report(bench map[string]Entry) *Report {
	return &Report{Schema: benchSchema, Bench: bench}
}

func TestCompareReports(t *testing.T) {
	old := report(map[string]Entry{
		"fast":    {NsPerOp: 100, AllocsPerOp: 2},
		"slow":    {NsPerOp: 100, AllocsPerOp: 2},
		"allocs":  {NsPerOp: 100, AllocsPerOp: 2},
		"retired": {NsPerOp: 100},
	})
	cur := report(map[string]Entry{
		"fast":   {NsPerOp: 90, AllocsPerOp: 2},  // improved
		"slow":   {NsPerOp: 150, AllocsPerOp: 2}, // +50% over a 30% threshold
		"allocs": {NsPerOp: 100, AllocsPerOp: 3}, // any alloc growth regresses
		"new":    {NsPerOp: 1e9, AllocsPerOp: 9}, // no baseline — ignored
	})
	regs := compareReports(old, cur, 0.30)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions %+v, want 2", len(regs), regs)
	}
	if regs[0].Name != "allocs" || regs[0].Metric != "allocs_per_op" {
		t.Errorf("first regression %+v, want allocs/allocs_per_op", regs[0])
	}
	if regs[1].Name != "slow" || regs[1].Metric != "ns_per_op" || regs[1].Ratio != 1.5 {
		t.Errorf("second regression %+v, want slow/ns_per_op at 1.5x", regs[1])
	}
}

func TestCompareReportsWithinThreshold(t *testing.T) {
	old := report(map[string]Entry{"b": {NsPerOp: 100, AllocsPerOp: 5}})
	cur := report(map[string]Entry{"b": {NsPerOp: 129, AllocsPerOp: 5}})
	if regs := compareReports(old, cur, 0.30); len(regs) != 0 {
		t.Errorf("29%% slowdown under a 30%% threshold flagged: %+v", regs)
	}
}

func TestLoadReport(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	data, err := json.Marshal(report(map[string]Entry{"b": {NsPerOp: 1}}))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(good, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := loadReport(good)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bench["b"].NsPerOp != 1 {
		t.Errorf("loaded report %+v", rep.Bench)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadReport(bad); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("wrong-schema report accepted: %v", err)
	}
	if _, err := loadReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestPrintComparison(t *testing.T) {
	old := report(map[string]Entry{"b": {NsPerOp: 100, AllocsPerOp: 5}})
	cur := report(map[string]Entry{
		"b":   {NsPerOp: 150, AllocsPerOp: 6},
		"new": {NsPerOp: 10, AllocsPerOp: 0},
	})
	var sb strings.Builder
	printComparison(&sb, old, cur)
	out := sb.String()
	for _, want := range []string{"+50.0%", "5->6", "new"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison table missing %q:\n%s", want, out)
		}
	}
}

func TestIntersectRegressions(t *testing.T) {
	first := []Regression{
		{Name: "slow", Metric: "ns_per_op", Old: 100, New: 160, Ratio: 1.6},
		{Name: "flaky", Metric: "ns_per_op", Old: 100, New: 150, Ratio: 1.5},
		{Name: "allocs", Metric: "allocs_per_op", Old: 2, New: 3},
	}
	second := []Regression{
		{Name: "slow", Metric: "ns_per_op", Old: 100, New: 140, Ratio: 1.4},
		{Name: "allocs", Metric: "allocs_per_op", Old: 2, New: 3},
		{Name: "other", Metric: "ns_per_op", Old: 100, New: 200, Ratio: 2},
	}
	got := intersectRegressions(first, second)
	if len(got) != 2 {
		t.Fatalf("got %d regressions %+v, want 2 (flaky exonerated, other absent from first pass)", len(got), got)
	}
	// The milder of the two sightings is reported.
	if got[0].Name != "slow" || got[0].New != 140 {
		t.Errorf("first survivor %+v, want slow at its milder 140 ns/op", got[0])
	}
	if got[1].Name != "allocs" || got[1].Metric != "allocs_per_op" {
		t.Errorf("second survivor %+v, want allocs/allocs_per_op", got[1])
	}
}

func TestIntersectRegressionsCleanPass(t *testing.T) {
	first := []Regression{{Name: "slow", Metric: "ns_per_op", Old: 100, New: 150, Ratio: 1.5}}
	if got := intersectRegressions(first, nil); len(got) != 0 {
		t.Errorf("clean second pass left survivors: %+v", got)
	}
}

func TestCompareReportsCampaignAllocSlack(t *testing.T) {
	old := report(map[string]Entry{
		"campaign": {NsPerOp: 1e6, AllocsPerOp: 885, Episodes: 64, AllocsPerEp: 13},
	})
	// Campaign allocation totals jitter with the iteration count; one
	// alloc/episode of slack absorbs that without admitting real leaks.
	within := report(map[string]Entry{
		"campaign": {NsPerOp: 1e6, AllocsPerOp: 896, Episodes: 64, AllocsPerEp: 14},
	})
	if regs := compareReports(old, within, 0.30); len(regs) != 0 {
		t.Errorf("one alloc/episode of growth flagged: %+v", regs)
	}
	leak := report(map[string]Entry{
		"campaign": {NsPerOp: 1e6, AllocsPerOp: 960, Episodes: 64, AllocsPerEp: 15},
	})
	regs := compareReports(old, leak, 0.30)
	if len(regs) != 1 || regs[0].Metric != "allocs_per_episode" {
		t.Fatalf("two allocs/episode of growth not flagged: %+v", regs)
	}
	if regs[0].Old != 13 || regs[0].New != 15 {
		t.Errorf("regression values %+v, want 13 -> 15", regs[0])
	}
}

func TestCompareReportsCampaignAllocSlackProportional(t *testing.T) {
	// Unarena'd paths in the hundreds of allocs/episode jitter by a few
	// allocs from cold-iteration amortization; the slack scales to 1% of
	// the baseline so they don't flake, while real growth still fails.
	old := report(map[string]Entry{
		"campaign": {NsPerOp: 1e6, AllocsPerOp: 28000, Episodes: 64, AllocsPerEp: 437},
	})
	within := report(map[string]Entry{
		"campaign": {NsPerOp: 1e6, AllocsPerOp: 28200, Episodes: 64, AllocsPerEp: 441},
	})
	if regs := compareReports(old, within, 0.30); len(regs) != 0 {
		t.Errorf("jitter within 1%% flagged: %+v", regs)
	}
	leak := report(map[string]Entry{
		"campaign": {NsPerOp: 1e6, AllocsPerOp: 28500, Episodes: 64, AllocsPerEp: 443},
	})
	regs := compareReports(old, leak, 0.30)
	if len(regs) != 1 || regs[0].Metric != "allocs_per_episode" {
		t.Fatalf("growth beyond the proportional slack not flagged: %+v", regs)
	}
}
