// Command recoverd serves recovery controllers over HTTP: the deployable
// form of the bounded-POMDP framework. At startup it loads a recovery
// model, verifies the paper's conditions, computes the RA-Bound, optionally
// bootstraps it (or loads a previously saved bound set), and then serves
// the episode API of internal/server.
//
// Usage:
//
//	recoverd -addr :7947 -model emn -bootstrap 10
//	recoverd -model my-system.json -top 3600 -bounds bounds.json
//
// A typical monitor-integration loop:
//
//	id=$(curl -s -X POST localhost:7947/v1/episodes | jq .episodeId)
//	curl -s localhost:7947/v1/episodes/$id/decision
//	curl -s -X POST localhost:7947/v1/episodes/$id/observations \
//	     -d '{"actionName":"observe","observationName":"obs:HPathMon"}'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"bpomdp/internal/client"
	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/emn"
	"bpomdp/internal/fleet"
	"bpomdp/internal/modelload"
	"bpomdp/internal/obs"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
	"bpomdp/internal/server"
)

func main() {
	if err := run(context.Background(), os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "recoverd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("recoverd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":7947", "listen address")
		modelName   = fs.String("model", "emn", `model: "emn", "twoserver", or a path to a model JSON`)
		top         = fs.Float64("top", emn.OperatorResponseTime, "operator response time t_op in seconds")
		bootstrap   = fs.Int("bootstrap", 10, "bootstrap episodes before serving")
		bootDepth   = fs.Int("bootstrap-depth", 2, "tree depth during bootstrap")
		depth       = fs.Int("depth", 1, "online tree depth")
		improve     = fs.Bool("improve-online", true, "keep improving the bound during real recovery")
		seed        = fs.Uint64("seed", 1, "bootstrap RNG seed")
		boundsPath  = fs.String("bounds", "", "load the bound set from this JSON file if it exists, and save it back after bootstrap")
		fscPath     = fs.String("fsc", "", "load a compiled finite-state controller (see cmd/fsccompile) and serve table hits from it, falling back to the tree")
		fscGap      = fs.Float64("fsc-gap-threshold", 1e-6, "serve an FSC node only when its compile-time bound gap is at most this; larger nodes fall back to the tree")
		refine      = fs.Bool("refine-bounds", false, "run HSVI-style offline bound refinement (paired upper/lower bounds) after bootstrap, before serving")
		refineGap   = fs.Float64("refine-gap", 1e-6, "with -refine-bounds, the root bound gap refinement converges to")
		maxEpisodes = fs.Int("max-episodes", 0, "cap on concurrently open episodes (0 = default)")

		checkpointDir   = fs.String("checkpoint-dir", "", "persist per-episode checkpoints here; a restarted daemon resumes all open episodes")
		checkpointStore = fs.String("checkpoint-store", "dir", `checkpoint store layout: "dir" (one JSON file per episode) or "log" (append-only log with compaction)`)
		episodeTTL      = fs.Duration("episode-ttl", 30*time.Minute, "evict episodes idle longer than this (0 disables abandoned-monitor GC)")
		tombstoneTTL    = fs.Duration("tombstone-ttl", 10*time.Minute, "keep terminal-decision tombstones at least this long (0 = -episode-ttl); must be >= -client-retry-budget")
		retryBudget     = fs.Duration("client-retry-budget", client.DefaultRetryBudget, "longest cumulative retry backoff clients are configured with; tombstones must outlive it")
		maxBodyBytes    = fs.Int64("max-body-bytes", 1<<20, "cap on request body size")

		fleetSelf   = fs.String("fleet-self", "", "this member's id within -fleet-peers; enables fleet mode")
		fleetPeers  = fs.String("fleet-peers", "", `static fleet membership as comma-separated id=addr pairs, e.g. "n1=http://10.0.0.1:7947,n2=http://10.0.0.2:7947"`)
		fleetVnodes = fs.Int("fleet-vnodes", 0, "virtual nodes per member on the hash ring (0 = default; must match on every member and client)")

		pprofAddr   = fs.String("pprof", "", "serve net/http/pprof on this separate address (empty = off)")
		metricsAddr = fs.String("metrics-addr", "", "serve /metrics plus the pprof endpoints on this separate address, keeping scrapers off the API port (empty = off)")
		expvarOn    = fs.Bool("expvar", false, "also serve expvar under /debug/vars on the -pprof and -metrics-addr listeners")
		logRequests = fs.Bool("log-requests", false, "log every API request (method, path, status, duration) via slog")
		tracePath   = fs.String("trace", "", "append one structured JSONL decision record per computed decision to this file (enables per-decision stats collection)")
		spanPath    = fs.String("span-trace", "", "append one bpomdp.span/v1 JSONL span per traced operation to this file; stitch files from every node with cmd/tracestats")

		readHeaderTimeout = fs.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout")
		readTimeout       = fs.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout (bounds slow-loris request bodies)")
		writeTimeout      = fs.Duration("write-timeout", 30*time.Second, "http.Server WriteTimeout")
		idleTimeout       = fs.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	rm, err := modelload.Load(*modelName)
	if err != nil {
		return err
	}
	prep, err := core.Prepare(rm, core.PrepareOptions{OperatorResponseTime: *top})
	if err != nil {
		return err
	}
	log.Printf("model %q: %d states, %d actions, %d observations; regime %s",
		*modelName, prep.Model.NumStates(), prep.Model.NumActions(), prep.Model.NumObservations(), prep.Regime)

	loaded := false
	if *boundsPath != "" {
		if data, err := os.ReadFile(*boundsPath); err == nil {
			if err := json.Unmarshal(data, prep.Set); err != nil {
				return fmt.Errorf("load bounds %s: %w", *boundsPath, err)
			}
			if prep.Set.NumStates() != prep.Model.NumStates() {
				return fmt.Errorf("bounds %s are over %d states, model has %d",
					*boundsPath, prep.Set.NumStates(), prep.Model.NumStates())
			}
			log.Printf("loaded %d bound vectors from %s", prep.Set.Size(), *boundsPath)
			loaded = true
		} else if !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	if !loaded && *bootstrap > 0 {
		start := time.Now()
		stats, err := prep.Bootstrap(*bootstrap, controller.VariantAverage, *bootDepth, rng.New(*seed))
		if err != nil {
			return err
		}
		last := stats[len(stats)-1]
		log.Printf("bootstrapped %d episodes in %v: bound at uniform %.2f, %d vectors",
			*bootstrap, time.Since(start).Round(time.Millisecond), last.BoundAtUniform, last.Vectors)
		if *boundsPath != "" {
			data, err := json.Marshal(prep.Set)
			if err != nil {
				return err
			}
			if err := os.WriteFile(*boundsPath, data, 0o644); err != nil {
				return err
			}
			log.Printf("saved bound set to %s", *boundsPath)
		}
	}

	metrics := obs.NewRegistry()

	// Offline HSVI refinement: pair the (possibly bootstrapped) lower set
	// with a sawtooth upper bound and tighten both until the root gap drops
	// to -refine-gap. The refined planes land in prep.Set in place, so every
	// controller below consumes them through the unchanged Set interface.
	if *refine {
		rep, err := prep.RefineBounds(core.RefineConfig{Epsilon: *refineGap})
		if err != nil {
			return fmt.Errorf("refine bounds: %w", err)
		}
		log.Printf("refined bounds in %v: root gap %.3g -> %.3g (%d trials, %d backups, +%d planes, +%d points, converged=%v)",
			rep.Wall.Round(time.Millisecond), rep.InitialGap, rep.FinalGap,
			rep.Trials, rep.Backups, rep.PlanesAdded, rep.PointsAdded, rep.Converged)
		if *boundsPath != "" {
			data, err := json.Marshal(prep.Set)
			if err != nil {
				return err
			}
			if err := os.WriteFile(*boundsPath, data, 0o644); err != nil {
				return err
			}
			log.Printf("saved refined bound set to %s", *boundsPath)
		}
		r := rep
		metrics.GaugeFunc("recoverd_refine_root_gap",
			"Root bound gap after offline HSVI refinement.",
			func() float64 { return r.FinalGap })
		metrics.CounterFunc("recoverd_refine_backups_total",
			"Belief points backed up (lower and upper) by offline refinement.",
			func() float64 { return float64(r.Backups) })
		metrics.GaugeFunc("recoverd_refine_wall_seconds",
			"Wall-clock time of the offline refinement run.",
			func() float64 { return r.Wall.Seconds() })
	}

	// The compiled FSC fast path: one shared immutable table, per-episode
	// FSCDecider wrappers around the usual tree controllers. Its hit/fallback
	// counters are scraped straight off the shared table via the metrics
	// registry, so serving pays nothing beyond the atomic increments the
	// table keeps anyway.
	var fsc *controller.FSC
	if *fscPath != "" {
		f, err := os.Open(*fscPath)
		if err != nil {
			return fmt.Errorf("open fsc: %w", err)
		}
		fsc, err = controller.DecodeFSC(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("load fsc %s: %w", *fscPath, err)
		}
		if fsc.NumStates() != prep.Model.NumStates() ||
			fsc.NumActions() != prep.Model.NumActions() ||
			fsc.NumObservations() != prep.Model.NumObservations() {
			return fmt.Errorf("fsc %s compiled for a %d-state/%d-action/%d-observation model; loaded model has %d/%d/%d",
				*fscPath, fsc.NumStates(), fsc.NumActions(), fsc.NumObservations(),
				prep.Model.NumStates(), prep.Model.NumActions(), prep.Model.NumObservations())
		}
		log.Printf("loaded fsc from %s: %d nodes, %d edges, max gap %.3g (serving gap <= %.3g)",
			*fscPath, fsc.NumNodes(), fsc.NumEdges(), fsc.MaxGap(), *fscGap)
		t := fsc
		metrics.CounterFunc("recoverd_fsc_hits_total",
			"Decisions served from the compiled FSC table.",
			func() float64 { return float64(t.Hits()) })
		metrics.CounterFunc("recoverd_fsc_fallbacks_total",
			"Decisions that fell back to the Max-Avg tree.",
			func() float64 { return float64(t.Fallbacks()) })
		metrics.GaugeFunc("recoverd_fsc_nodes",
			"Nodes in the loaded compiled FSC.",
			func() float64 { return float64(t.NumNodes()) })
	}

	if *expvarOn && *pprofAddr == "" && *metricsAddr == "" {
		return fmt.Errorf("-expvar needs a -pprof or -metrics-addr listener address")
	}
	var traceFile *os.File
	if *tracePath != "" {
		f, err := os.OpenFile(*tracePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("open trace file: %w", err)
		}
		traceFile = f
		defer traceFile.Close()
		log.Printf("tracing decisions to %s (schema %s)", *tracePath, obs.TraceSchema)
	}
	var spanFile *os.File
	if *spanPath != "" {
		f, err := os.OpenFile(*spanPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("open span trace file: %w", err)
		}
		spanFile = f
		defer spanFile.Close()
		log.Printf("tracing episode spans to %s (schema %s)", *spanPath, obs.SpanSchema)
	}

	if (*fleetSelf == "") != (*fleetPeers == "") {
		return fmt.Errorf("-fleet-self and -fleet-peers must be set together")
	}
	fleetOn := *fleetSelf != ""
	if fleetOn && *checkpointDir == "" {
		return fmt.Errorf("fleet mode needs -checkpoint-dir: episode handoff replays the dead member's checkpoints")
	}

	var checkpointer server.Checkpointer
	if *checkpointDir != "" {
		dir := *checkpointDir
		if fleetOn {
			// Per-member stores under a shared root: survivors open a dead
			// member's store at <root>/<memberID> to adopt its episodes.
			dir = filepath.Join(dir, *fleetSelf)
		}
		cp, err := server.OpenCheckpointStore(*checkpointStore, dir)
		if err != nil {
			return err
		}
		checkpointer = cp
	}

	var fleetCfg *server.FleetConfig
	if fleetOn {
		members, err := fleet.ParsePeers(*fleetPeers)
		if err != nil {
			return err
		}
		view, err := fleet.NewMembership(members, *fleetVnodes)
		if err != nil {
			return err
		}
		root, store := *checkpointDir, *checkpointStore
		fleetCfg = &server.FleetConfig{
			Self:       *fleetSelf,
			Membership: view,
			StoreFor: func(memberID string) (server.Checkpointer, error) {
				return server.OpenCheckpointStore(store, filepath.Join(root, memberID))
			},
		}
		log.Printf("fleet mode: member %q of %d peers", *fleetSelf, len(members))
	}

	// Structured tracing needs the controllers to collect per-decision
	// stats; without -trace the flag stays off and the hot path is bare.
	collectStats := traceFile != nil
	var decisionTrace io.Writer
	if traceFile != nil {
		decisionTrace = traceFile
	}
	var spanTrace io.Writer
	if spanFile != nil {
		spanTrace = spanFile
	}
	srv, err := server.New(server.Config{
		Model:             prep.Model,
		MaxEpisodes:       *maxEpisodes,
		Checkpointer:      checkpointer,
		Fleet:             fleetCfg,
		SpanTrace:         spanTrace,
		EpisodeTTL:        *episodeTTL,
		TombstoneTTL:      *tombstoneTTL,
		ClientRetryBudget: *retryBudget,
		MaxBodyBytes:      *maxBodyBytes,
		DecisionTrace:     decisionTrace,
		Metrics:           metrics,
		NewController: func() (controller.Controller, pomdp.Belief, error) {
			cfg := core.ControllerConfig{Depth: *depth, ImproveOnline: *improve, CollectStats: collectStats}
			var ctrl controller.Controller
			var err error
			if fsc != nil {
				ctrl, err = prep.NewFSCDecider(fsc, cfg, *fscGap)
			} else {
				ctrl, err = prep.NewController(cfg)
			}
			if err != nil {
				return nil, nil, err
			}
			initial, err := prep.InitialBelief()
			return ctrl, initial, err
		},
		// Batch deciders are pooled across concurrent requests and share the
		// bound set, so they are always built with online improvement off —
		// concurrent set mutation from pooled deciders would race. (The FSC
		// table itself is immutable and safe to share.)
		NewBatchDecider: func() (controller.BatchDecider, error) {
			if fsc != nil {
				return prep.NewFSCDecider(fsc, core.ControllerConfig{Depth: *depth}, *fscGap)
			}
			return prep.NewController(core.ControllerConfig{Depth: *depth})
		},
	})
	if err != nil {
		return err
	}
	if checkpointer != nil {
		rep := srv.Restored()
		if rep.LoadErr != nil {
			log.Printf("checkpoint load: %v", rep.LoadErr)
		}
		if rep.Resumed > 0 || len(rep.Failed) > 0 {
			log.Printf("resumed %d checkpointed episode(s), %d failed", rep.Resumed, len(rep.Failed))
			for _, f := range rep.Failed {
				log.Printf("episode %d not resumed: %v", f.EpisodeID, f.Err)
			}
		}
	}

	var handler http.Handler = srv
	if *logRequests {
		handler = requestLogger(slog.Default(), handler)
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	var debugSrv *http.Server
	if *pprofAddr != "" {
		// The profiling endpoints live on their own listener so they are
		// never exposed on the API port.
		debugSrv = &http.Server{
			Addr:              *pprofAddr,
			Handler:           debugMux(*expvarOn),
			ReadHeaderTimeout: *readHeaderTimeout,
		}
		go func() {
			log.Printf("debug listener (pprof%s) on %s", map[bool]string{true: "+expvar"}[*expvarOn], *pprofAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	var metricsSrv *http.Server
	if *metricsAddr != "" {
		// A dedicated observability listener: scrapers and profilers reach
		// /metrics and the pprof endpoints without touching the API port's
		// request path, timeouts, or access logs.
		mux := debugMux(*expvarOn)
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			_ = metrics.WritePrometheus(w)
		})
		metricsSrv = &http.Server{
			Addr:              *metricsAddr,
			Handler:           mux,
			ReadHeaderTimeout: *readHeaderTimeout,
		}
		go func() {
			log.Printf("metrics listener (/metrics+pprof%s) on %s", map[bool]string{true: "+expvar"}[*expvarOn], *metricsAddr)
			if err := metricsSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("metrics listener: %v", err)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving on %s", *addr)
		errCh <- hs.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		if debugSrv != nil {
			_ = debugSrv.Close()
		}
		if metricsSrv != nil {
			_ = metricsSrv.Close()
		}
		srv.Close()
		return err
	case <-ctx.Done():
		log.Printf("shutting down")
		// Flip /healthz to 503 first so load balancers stop routing new
		// work here while the in-flight requests drain.
		srv.BeginShutdown()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		// Drain in-flight requests first, then checkpoint every still-open
		// episode so a restart resumes them.
		shutdownErr := hs.Shutdown(shutdownCtx)
		if debugSrv != nil {
			_ = debugSrv.Close()
		}
		if metricsSrv != nil {
			_ = metricsSrv.Close()
		}
		if err := srv.Close(); err != nil {
			log.Printf("final checkpoint: %v", err)
		}
		return shutdownErr
	}
}

// debugMux serves the pprof profiling endpoints (and optionally expvar)
// without relying on http.DefaultServeMux, so nothing else registered there
// leaks onto the debug listener.
func debugMux(withExpvar bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if withExpvar {
		mux.Handle("/debug/vars", expvar.Handler())
	}
	return mux
}

// statusRecorder captures the status code a handler writes.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// requestLogger logs one structured line per request.
func requestLogger(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		logger.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.code,
			"duration", time.Since(t0))
	})
}
