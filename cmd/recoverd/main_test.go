package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bpomdp/internal/bounds"
)

// cancelledCtx returns an already-cancelled context so run() takes the
// graceful-shutdown path immediately after setup.
func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func TestRunBootstrapsAndSavesBounds(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bounds.json")
	err := run(cancelledCtx(), []string{
		"-addr", "127.0.0.1:0",
		"-model", "twoserver",
		"-top", "10",
		"-bootstrap", "3",
		"-bootstrap-depth", "1",
		"-bounds", path,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("bounds not saved: %v", err)
	}
	var set bounds.Set
	if err := json.Unmarshal(data, &set); err != nil {
		t.Fatal(err)
	}
	if set.NumStates() != 4 || set.Size() < 1 {
		t.Errorf("saved set: %d states, %d planes", set.NumStates(), set.Size())
	}

	// Second run loads the saved set instead of bootstrapping.
	if err := run(cancelledCtx(), []string{
		"-addr", "127.0.0.1:0", "-model", "twoserver", "-top", "10",
		"-bootstrap", "0", "-bounds", path,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(cancelledCtx(), []string{"-bogus-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run(cancelledCtx(), []string{"-model", "/no/such.json"}); err == nil {
		t.Error("missing model accepted")
	}
	if err := run(cancelledCtx(), []string{"-model", "twoserver", "-top", "-5"}); err == nil {
		t.Error("negative t_op accepted")
	}
}

func TestRunRejectsMismatchedBounds(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bounds.json")
	if err := os.WriteFile(path, []byte(`{"states":2,"planes":[[0,0]]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(cancelledCtx(), []string{
		"-addr", "127.0.0.1:0", "-model", "twoserver", "-top", "10", "-bounds", path,
	})
	if err == nil {
		t.Error("mismatched bound dimensions accepted")
	}
}

func TestRunWithCheckpointDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	args := []string{
		"-addr", "127.0.0.1:0",
		"-model", "twoserver",
		"-top", "10",
		"-bootstrap", "3",
		"-bootstrap-depth", "1",
		"-checkpoint-dir", dir,
		"-episode-ttl", "1m",
		"-read-header-timeout", "1s",
		"-read-timeout", "2s",
		"-write-timeout", "2s",
		"-idle-timeout", "5s",
		"-max-body-bytes", "4096",
	}
	if err := run(cancelledCtx(), args); err != nil {
		t.Fatal(err)
	}
	// The checkpointer creates the directory eagerly so a bad path fails at
	// startup, not at the first snapshot.
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		t.Errorf("checkpoint dir not created: %v", err)
	}
	// A second run over the same (empty) directory restores cleanly.
	if err := run(cancelledCtx(), args); err != nil {
		t.Fatal(err)
	}
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(cancelledCtx(), []string{
		"-addr", "127.0.0.1:0", "-model", "twoserver", "-top", "10",
		"-bootstrap", "3", "-bootstrap-depth", "1",
		"-checkpoint-dir", filepath.Join(blocker, "not-a-dir"),
	}); err == nil {
		t.Error("unusable checkpoint dir accepted")
	}
}

func TestRunWithLogCheckpointStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	args := []string{
		"-addr", "127.0.0.1:0",
		"-model", "twoserver",
		"-top", "10",
		"-bootstrap", "3",
		"-bootstrap-depth", "1",
		"-checkpoint-dir", dir,
		"-checkpoint-store", "log",
	}
	if err := run(cancelledCtx(), args); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "checkpoint.log")); err != nil {
		t.Errorf("log store file not created: %v", err)
	}
	// A second run reopens the log cleanly.
	if err := run(cancelledCtx(), args); err != nil {
		t.Fatal(err)
	}
	if err := run(cancelledCtx(), []string{
		"-addr", "127.0.0.1:0", "-model", "twoserver", "-top", "10",
		"-bootstrap", "0", "-checkpoint-dir", dir, "-checkpoint-store", "sqlite",
	}); err == nil {
		t.Error("unknown -checkpoint-store accepted")
	}
}

func TestRunFleetFlags(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	args := []string{
		"-addr", "127.0.0.1:0",
		"-model", "twoserver",
		"-top", "10",
		"-bootstrap", "2",
		"-bootstrap-depth", "1",
		"-checkpoint-dir", dir,
		"-fleet-self", "n1",
		"-fleet-peers", "n1=127.0.0.1:7947,n2=127.0.0.1:7948",
	}
	if err := run(cancelledCtx(), args); err != nil {
		t.Fatal(err)
	}
	// Fleet mode nests this member's store under the shared root.
	if fi, err := os.Stat(filepath.Join(dir, "n1")); err != nil || !fi.IsDir() {
		t.Errorf("per-member store dir not created: %v", err)
	}

	base := []string{"-addr", "127.0.0.1:0", "-model", "twoserver", "-top", "10", "-bootstrap", "0"}
	if err := run(cancelledCtx(), append(base,
		"-checkpoint-dir", dir, "-fleet-self", "n1")); err == nil {
		t.Error("-fleet-self without -fleet-peers accepted")
	}
	if err := run(cancelledCtx(), append(base,
		"-checkpoint-dir", dir, "-fleet-peers", "n1=x,n2=y")); err == nil {
		t.Error("-fleet-peers without -fleet-self accepted")
	}
	if err := run(cancelledCtx(), append(base,
		"-fleet-self", "n1", "-fleet-peers", "n1=x,n2=y")); err == nil {
		t.Error("fleet mode without -checkpoint-dir accepted")
	}
	if err := run(cancelledCtx(), append(base,
		"-checkpoint-dir", dir, "-fleet-self", "ghost", "-fleet-peers", "n1=x,n2=y")); err == nil {
		t.Error("self outside the peer list accepted")
	}
	if err := run(cancelledCtx(), append(base,
		"-checkpoint-dir", dir, "-fleet-self", "n1", "-fleet-peers", "n1=x,n1=y")); err == nil {
		t.Error("duplicate peer ids accepted")
	}
}

func TestRunObservabilityFlags(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "decisions.jsonl")
	if err := run(cancelledCtx(), []string{
		"-addr", "127.0.0.1:0",
		"-model", "twoserver",
		"-top", "10",
		"-bootstrap", "2",
		"-bootstrap-depth", "1",
		"-pprof", "127.0.0.1:0",
		"-expvar",
		"-log-requests",
		"-trace", trace,
	}); err != nil {
		t.Fatal(err)
	}
	// The trace file is created eagerly so a bad path fails at startup.
	if _, err := os.Stat(trace); err != nil {
		t.Errorf("trace file not created: %v", err)
	}

	// expvar is served on the pprof/metrics listeners; without either it is
	// an error.
	if err := run(cancelledCtx(), []string{
		"-addr", "127.0.0.1:0", "-model", "twoserver", "-top", "10",
		"-bootstrap", "0", "-expvar",
	}); err == nil {
		t.Error("-expvar without -pprof accepted")
	}
	// ... but a -metrics-addr listener alone satisfies it.
	if err := run(cancelledCtx(), []string{
		"-addr", "127.0.0.1:0", "-model", "twoserver", "-top", "10",
		"-bootstrap", "0", "-expvar", "-metrics-addr", "127.0.0.1:0",
	}); err != nil {
		t.Errorf("-expvar with -metrics-addr rejected: %v", err)
	}

	// The span trace file is created eagerly, like the decision trace.
	spans := filepath.Join(t.TempDir(), "node.spans")
	if err := run(cancelledCtx(), []string{
		"-addr", "127.0.0.1:0", "-model", "twoserver", "-top", "10",
		"-bootstrap", "0", "-span-trace", spans,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(spans); err != nil {
		t.Errorf("span trace file not created: %v", err)
	}
	if err := run(cancelledCtx(), []string{
		"-addr", "127.0.0.1:0", "-model", "twoserver", "-top", "10",
		"-bootstrap", "0", "-span-trace", filepath.Join(spans, "not-a-dir", "s.jsonl"),
	}); err == nil {
		t.Error("unwritable span trace path accepted")
	}

	// An unwritable trace path fails at startup, not at the first decision.
	if err := run(cancelledCtx(), []string{
		"-addr", "127.0.0.1:0", "-model", "twoserver", "-top", "10",
		"-bootstrap", "0", "-trace", filepath.Join(trace, "not-a-dir", "t.jsonl"),
	}); err == nil {
		t.Error("unwritable trace path accepted")
	}
}

// TestRunRejectsShortTombstoneTTL: a tombstone TTL below the advertised
// client retry budget would let a terminal decision expire while its client
// is still retrying — the daemon must refuse to start that way.
func TestRunRejectsShortTombstoneTTL(t *testing.T) {
	err := run(cancelledCtx(), []string{
		"-model", "twoserver",
		"-tombstone-ttl", "5s", "-client-retry-budget", "30s",
	})
	if err == nil || !strings.Contains(err.Error(), "retry budget") {
		t.Errorf("tombstone TTL below retry budget accepted (err=%v)", err)
	}
	// The -episode-ttl fallback (when -tombstone-ttl is zeroed) is held to
	// the same floor.
	err = run(cancelledCtx(), []string{
		"-model", "twoserver",
		"-tombstone-ttl", "0", "-episode-ttl", "5s", "-client-retry-budget", "30s",
	})
	if err == nil || !strings.Contains(err.Error(), "retry budget") {
		t.Errorf("fallback TTL below retry budget accepted (err=%v)", err)
	}
	// Matching them is fine.
	if err := run(cancelledCtx(), []string{
		"-model", "twoserver",
		"-tombstone-ttl", "30s", "-client-retry-budget", "30s",
	}); err != nil {
		t.Errorf("TTL == budget rejected: %v", err)
	}
}
