package bpomdp

import (
	"bpomdp/internal/arch"
	"bpomdp/internal/bounds"
	"bpomdp/internal/client"
	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/emn"
	"bpomdp/internal/experiments"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
	"bpomdp/internal/server"
	"bpomdp/internal/sim"
)

// Model building.
type (
	// POMDP is the model tuple (S, A, O, p, q, r).
	POMDP = pomdp.POMDP
	// ModelBuilder assembles a POMDP incrementally by name.
	ModelBuilder = pomdp.Builder
	// Belief is a probability distribution over states.
	Belief = pomdp.Belief
	// System declaratively describes a distributed system (hosts,
	// components, paths, monitors) and compiles to a recovery model.
	System = arch.System
	// Compiled is a compiled System with its index maps.
	Compiled = arch.Compiled
	// EMNConfig tunes the paper's EMN evaluation system.
	EMNConfig = emn.Config
)

// NewModelBuilder returns an empty POMDP builder.
func NewModelBuilder() *ModelBuilder { return pomdp.NewBuilder() }

// BuildEMN compiles the paper's Figure 4 EMN deployment.
func BuildEMN(cfg EMNConfig) (*Compiled, error) { return emn.Build(cfg) }

// Recovery framework (the paper's primary contribution).
type (
	// RecoveryModel couples a POMDP with recovery semantics (Sφ, cost
	// rates, durations).
	RecoveryModel = core.RecoveryModel
	// PrepareOptions configures Prepare.
	PrepareOptions = core.PrepareOptions
	// Prepared is a transformed model with its RA-Bound, ready to control.
	Prepared = core.Prepared
	// ControllerConfig tunes the bounded controller.
	ControllerConfig = core.ControllerConfig
	// Regime is the Section 3.1 convergence regime.
	Regime = core.Regime
	// BoundSet is a set of lower-bound hyperplanes over the belief simplex.
	BoundSet = bounds.Set
	// Controller drives recovery for one fault episode.
	Controller = controller.Controller
	// BootstrapVariant selects the Figure 5 bootstrap scheme.
	BootstrapVariant = controller.BootstrapVariant
	// RNG is a deterministic splittable random stream.
	RNG = rng.Stream
)

// Regimes and bootstrap variants.
const (
	RegimeNotification = core.RegimeNotification
	RegimeTermination  = core.RegimeTermination
	VariantRandom      = controller.VariantRandom
	VariantAverage     = controller.VariantAverage
)

// Prepare validates a recovery model (Conditions 1 and 2), applies the
// regime-appropriate transform, and computes the RA-Bound.
func Prepare(m *RecoveryModel, opts PrepareOptions) (*Prepared, error) {
	return core.Prepare(m, opts)
}

// NewRNG returns the deterministic root stream for a seed.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// Simulation and experiments.
type (
	// Runner executes fault-injection episodes against a recovery model.
	Runner = sim.Runner
	// EpisodeResult holds one episode's Table 1 metrics.
	EpisodeResult = sim.EpisodeResult
	// CampaignResult aggregates a campaign's per-fault averages.
	CampaignResult = sim.CampaignResult
	// Table1Config parameterizes the Table 1 reproduction.
	Table1Config = experiments.Table1Config
	// Table1Result is the Table 1 reproduction output.
	Table1Result = experiments.Table1Result
	// Fig5Config parameterizes the Figure 5 reproduction.
	Fig5Config = experiments.Fig5Config
	// Fig5Result is the Figure 5 reproduction output.
	Fig5Result = experiments.Fig5Result
)

// NewRunner builds a fault-injection runner (maxSteps 0 means 1000).
func NewRunner(rm *RecoveryModel, maxSteps int) (*Runner, error) {
	return sim.NewRunner(rm, maxSteps)
}

// Table1 reruns the paper's fault-injection experiment.
func Table1(cfg Table1Config) (*Table1Result, error) { return experiments.Table1(cfg) }

// Fig5 reruns the paper's bounds-improvement experiment.
func Fig5(cfg Fig5Config) (*Fig5Result, error) { return experiments.Fig5(cfg) }

// Service deployment.
type (
	// Server exposes recovery controllers over HTTP.
	Server = server.Server
	// ServerConfig configures a Server.
	ServerConfig = server.Config
	// Client is the typed HTTP client for a recovery service.
	Client = client.Client
)

// NewServer builds the HTTP recovery service.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// NewClient returns a client for the recovery service at baseURL.
func NewClient(baseURL string) (*Client, error) { return client.New(baseURL, nil) }
