#!/bin/sh
# check-links.sh — verify every relative markdown link in the repo's *.md
# files points at a file that exists. External links (http/https/mailto) and
# pure in-page anchors (#section) are skipped; a fragment on a relative link
# ("DESIGN.md#bounds") is stripped before the existence check.
#
# Pure POSIX sh + grep/sed so it runs identically in CI and in a dev
# container with no extra tooling.
set -eu

cd "$(dirname "$0")/.."

fail=0
for f in $(find . -path ./.git -prune -o -name '*.md' -print | sort); do
	# Pull out every (target) of an inline [text](target) link. The markdown
	# in this repo uses no nested parens in URLs, so a lazy [^)]* match is
	# exact.
	links=$(grep -oE '\]\([^)]+\)' "$f" | sed 's/^](//; s/)$//') || continue
	dir=$(dirname "$f")
	for link in $links; do
		case "$link" in
		http://* | https://* | mailto:*) continue ;;
		'#'*) continue ;;
		esac
		target=${link%%#*}
		[ -n "$target" ] || continue
		if [ ! -e "$dir/$target" ]; then
			echo "$f: broken link: $link" >&2
			fail=1
		fi
	done
done

if [ "$fail" -ne 0 ]; then
	echo "check-links: FAIL" >&2
	exit 1
fi
echo "check-links: OK"
