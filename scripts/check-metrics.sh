#!/bin/sh
# check-metrics.sh — assert that every metric family registered anywhere in
# the codebase is mentioned in README.md, so the metrics reference cannot
# silently drift from the binaries.
#
# Family names are harvested from source, not from a live /metrics scrape,
# so the check needs no build step: every family in this repo is registered
# as reg.Counter("recoverd_...") / metrics.GaugeFunc("recoverd_...") etc.
# with a literal name. Test files are excluded — test-only registries are
# not part of the exported surface. The README match is boundary-safe:
# recoverd_episodes_open in prose does NOT satisfy a registration of
# recoverd_episodes_opened because the character on each side of the
# candidate must not extend the family name.
set -eu

cd "$(dirname "$0")/.."

families=$(find internal cmd -name '*.go' ! -name '*_test.go' -print0 |
	xargs -0 grep -hoE '\.(Counter|CounterFunc|Gauge|GaugeFunc|Histogram)\("recoverd_[a-z_]+"' |
	sed 's/.*("//; s/"$//' | sort -u)

if [ -z "$families" ]; then
	echo "check-metrics: harvested no metric families; the grep pattern is stale" >&2
	exit 1
fi

fail=0
for m in $families; do
	if ! grep -qE "(^|[^A-Za-z0-9_])$m([^A-Za-z0-9_]|\$)" README.md; then
		echo "README.md: missing metric family $m" >&2
		fail=1
	fi
done

if [ "$fail" -ne 0 ]; then
	echo "check-metrics: FAIL" >&2
	exit 1
fi
echo "check-metrics: OK ($(echo "$families" | wc -l | tr -d ' ') families)"
