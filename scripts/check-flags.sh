#!/bin/sh
# check-flags.sh — assert that every flag defined by every command under
# cmd/ is mentioned in README.md, so the CLI reference cannot silently
# drift from the binaries.
#
# Flag names are harvested from source, not from -h output, so the check
# needs no build step: every flag in this repo is declared as
# fs.String("name", ...) / flag.Bool("name", ...) etc. on a *flag.FlagSet
# named fs or the package-level flag. The README match is boundary-safe:
# "-depth" in prose does NOT satisfy a definition of -bootstrap-depth
# (and vice versa) because the character on each side of the candidate
# must not extend the flag name.
set -eu

cd "$(dirname "$0")/.."

fail=0
for d in cmd/*/; do
	name=$(basename "$d")
	flags=$(grep -hoE '(fs|flag)\.(Bool|Duration|Float64|Int|Int64|String|Uint64)\("[^"]+"' "$d"*.go |
		sed 's/.*("//; s/"$//' | sort -u)
	for f in $flags; do
		if ! grep -qE "(^|[^A-Za-z0-9-])-$f([^A-Za-z0-9-]|\$)" README.md; then
			echo "README.md: missing flag -$f (defined by cmd/$name)" >&2
			fail=1
		fi
	done
done

if [ "$fail" -ne 0 ]; then
	echo "check-flags: FAIL" >&2
	exit 1
fi
echo "check-flags: OK"
