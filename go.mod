module bpomdp

go 1.22
