// Benchmarks regenerating the paper's evaluation (Section 5), plus
// micro-benchmarks of the computational kernels and ablations of the design
// choices called out in DESIGN.md.
//
//	go test -bench=. -benchmem
//
// Per-fault averages are attached as custom benchmark metrics
// (cost/fault, recoverySec/fault, …), so a bench run reads like a Table 1
// row; use cmd/emn-faultinject and cmd/emn-bounds for the full paper-scale
// tables.
package bpomdp

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"bpomdp/internal/arch"
	"bpomdp/internal/bounds"
	"bpomdp/internal/controller"
	"bpomdp/internal/core"
	"bpomdp/internal/emn"
	"bpomdp/internal/experiments"
	"bpomdp/internal/linalg"
	"bpomdp/internal/pomdp"
	"bpomdp/internal/rng"
	"bpomdp/internal/sim"
)

// ---------------------------------------------------------------------------
// Table 1: per-fault recovery metrics on EMN, one sub-benchmark per
// algorithm row. Each b.N iteration is one zombie-fault injection episode.
// ---------------------------------------------------------------------------

func BenchmarkTable1FaultInjection(b *testing.B) {
	for _, algo := range append(experiments.DefaultAlgorithms(), experiments.AlgoRandom) {
		b.Run(algo, func(b *testing.B) {
			benchCampaign(b, algo, emn.Config{})
		})
	}
}

func benchCampaign(b *testing.B, algo string, emnCfg emn.Config) {
	b.Helper()
	compiled, err := emn.Build(emnCfg)
	if err != nil {
		b.Fatal(err)
	}
	runner, err := sim.NewRunner(compiled.Recovery, 20000)
	if err != nil {
		b.Fatal(err)
	}
	ctrl, initial, err := experiments.BuildAlgorithm(algo, compiled, experiments.Table1Config{
		TerminationProbability: 0.9999,
		BootstrapRuns:          10,
		BootstrapDepth:         2,
		BoundedDepth:           1,
	}, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	stream := rng.New(2)
	faults := compiled.ZombieStates

	var agg sim.CampaignResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ep := stream.SplitN("bench-episode", i)
		fault := faults[ep.IntN(len(faults))]
		res, err := runner.RunEpisode(ctrl, initial, fault, ep)
		if err != nil {
			b.Fatal(err)
		}
		// Premature termination is reported, not fatal: a 0.9999
		// termination threshold *means* a ~1e-4 residual risk per episode,
		// which auto-scaled benchmark iteration counts will eventually hit.
		if res.Recovered {
			agg.Recovered++
		}
		agg.Episodes++
		agg.Cost.Add(res.Cost)
		agg.RecoveryTime.Add(res.RecoveryTime)
		agg.ResidualTime.Add(res.ResidualTime)
		agg.AlgoTimeMs.Add(float64(res.AlgoTime) / float64(time.Millisecond))
		agg.Actions.Add(float64(res.Actions))
		agg.MonitorCalls.Add(float64(res.MonitorCalls))
	}
	b.ReportMetric(agg.Cost.Mean(), "cost/fault")
	b.ReportMetric(agg.RecoveryTime.Mean(), "recoverySec/fault")
	b.ReportMetric(agg.ResidualTime.Mean(), "residualSec/fault")
	b.ReportMetric(agg.AlgoTimeMs.Mean(), "algoMs/fault")
	b.ReportMetric(agg.Actions.Mean(), "actions/fault")
	b.ReportMetric(agg.MonitorCalls.Mean(), "monitorCalls/fault")
	b.ReportMetric(100*float64(agg.Recovered)/float64(agg.Episodes), "recovered%")
}

// ---------------------------------------------------------------------------
// Figure 5(a)/(b): iterative bound improvement. Each b.N iteration is one
// bootstrap episode; the final bound tightness and vector count are
// reported as metrics.
// ---------------------------------------------------------------------------

func BenchmarkFig5aBoundsImprovement(b *testing.B) {
	for _, variant := range []controller.BootstrapVariant{controller.VariantRandom, controller.VariantAverage} {
		b.Run(variant.String(), func(b *testing.B) {
			boot := newEMNBootstrapper(b, variant, 1)
			b.ResetTimer()
			var last controller.IterationStats
			for i := 0; i < b.N; i++ {
				st, err := boot.Iterate()
				if err != nil {
					b.Fatal(err)
				}
				last = st
			}
			b.ReportMetric(experiments.UpperBoundOnCost(last.BoundAtUniform), "upperBoundCost")
		})
	}
}

func BenchmarkFig5bBoundVectors(b *testing.B) {
	for _, variant := range []controller.BootstrapVariant{controller.VariantRandom, controller.VariantAverage} {
		b.Run(variant.String(), func(b *testing.B) {
			boot := newEMNBootstrapper(b, variant, 1)
			b.ResetTimer()
			var last controller.IterationStats
			for i := 0; i < b.N; i++ {
				st, err := boot.Iterate()
				if err != nil {
					b.Fatal(err)
				}
				last = st
			}
			b.ReportMetric(float64(last.Vectors), "vectors")
			b.ReportMetric(float64(last.Vectors)/float64(b.N), "vectors/iter")
		})
	}
}

func newEMNBootstrapper(b *testing.B, variant controller.BootstrapVariant, depth int) *controller.Bootstrapper {
	b.Helper()
	compiled, err := emn.Build(emn.Config{})
	if err != nil {
		b.Fatal(err)
	}
	prep, err := core.Prepare(compiled.Recovery, core.PrepareOptions{
		OperatorResponseTime: emn.OperatorResponseTime,
	})
	if err != nil {
		b.Fatal(err)
	}
	boot, err := prep.NewBootstrapper(variant, depth, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	return boot
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the computational kernels.
// ---------------------------------------------------------------------------

func preparedEMN(b *testing.B) *core.Prepared {
	b.Helper()
	compiled, err := emn.Build(emn.Config{})
	if err != nil {
		b.Fatal(err)
	}
	prep, err := core.Prepare(compiled.Recovery, core.PrepareOptions{
		OperatorResponseTime: emn.OperatorResponseTime,
	})
	if err != nil {
		b.Fatal(err)
	}
	return prep
}

func BenchmarkRABoundSolve(b *testing.B) {
	compiled, err := emn.Build(emn.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Prepare(compiled.Recovery, core.PrepareOptions{
			OperatorResponseTime: emn.OperatorResponseTime,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBeliefUpdate(b *testing.B) {
	prep := preparedEMN(b)
	sc := pomdp.NewScratch(prep.Model)
	pi, err := prep.InitialBelief()
	if err != nil {
		b.Fatal(err)
	}
	obsAction := prep.Source.MonitorAction
	succs := prep.Model.Successors(sc, pi, obsAction)
	if len(succs) == 0 {
		b.Fatal("no successors")
	}
	o := succs[0].Obs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prep.Model.Update(sc, pi, obsAction, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBeliefMDPBackup(b *testing.B) {
	prep := preparedEMN(b)
	sc := pomdp.NewScratch(prep.Model)
	pi, err := prep.InitialBelief()
	if err != nil {
		b.Fatal(err)
	}
	leaf := prep.Set.AsValueFn()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pomdp.Backup(prep.Model, sc, pi, 1, leaf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIncrementalBoundUpdate(b *testing.B) {
	prep := preparedEMN(b)
	u, err := bounds.NewUpdater(prep.Model, prep.Set, bounds.Options{})
	if err != nil {
		b.Fatal(err)
	}
	pi, err := prep.InitialBelief()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.UpdateAt(pi); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(prep.Set.Size()), "vectors")
}

func BenchmarkTreeExpansion(b *testing.B) {
	for depth := 1; depth <= 3; depth++ {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			prep := preparedEMN(b)
			engine, err := controller.NewEngine(prep.Model, depth, 1, prep.Set.AsValueFn())
			if err != nil {
				b.Fatal(err)
			}
			pi, err := prep.InitialBelief()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Choose(pi); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablations.
// ---------------------------------------------------------------------------

// BenchmarkAblationLeafEvaluator compares the bounded leaf against the
// SRDS'05 heuristic leaf at equal depth — the paper's central comparison.
func BenchmarkAblationLeafEvaluator(b *testing.B) {
	b.Run("bound-leaf", func(b *testing.B) {
		benchCampaign(b, experiments.AlgoBounded, emn.Config{})
	})
	b.Run("heuristic-leaf", func(b *testing.B) {
		benchCampaign(b, experiments.AlgoHeuristic1, emn.Config{})
	})
}

// BenchmarkAblationFreeMonitors removes the monitor sweep cost, violating
// Property 1(a): the bounded controller still terminates (the a_T
// tie-break), but lingers far longer in monitoring.
func BenchmarkAblationFreeMonitors(b *testing.B) {
	b.Run("priced-sweeps", func(b *testing.B) {
		benchCampaign(b, experiments.AlgoBounded, emn.Config{})
	})
	b.Run("free-sweeps", func(b *testing.B) {
		benchCampaign(b, experiments.AlgoBounded, emn.Config{FreeMonitors: true})
	})
}

// BenchmarkScalingSystemSize grows arch-generated systems (more hosts and
// load-balanced replicas → more states) and reports the off-line RA-Bound
// solve and the on-line depth-1 decision — the two costs Section 4.3
// discusses ("standard, numerically stable linear system solvers for models
// with up to hundreds of thousands of states"; the decision loop stays
// interactive because it runs on the original state space).
func BenchmarkScalingSystemSize(b *testing.B) {
	build := func(replicas int) *core.RecoveryModel {
		sys := &arch.System{
			Name:            fmt.Sprintf("scale-%d", replicas),
			MonitorDuration: 5,
			MonitorCost:     0.5,
			CrashFaults:     true,
			ZombieFaults:    true,
			HostFaults:      true,
		}
		stage := arch.Stage{}
		for i := 0; i < replicas; i++ {
			host := fmt.Sprintf("h%d", i)
			comp := fmt.Sprintf("app%d", i)
			sys.Hosts = append(sys.Hosts, arch.Host{Name: host, RebootDuration: 300})
			sys.Components = append(sys.Components, arch.Component{Name: comp, Host: host, RestartDuration: 60})
			sys.ComponentMonitors = append(sys.ComponentMonitors, arch.ComponentMonitor{
				Name: "mon" + comp, Target: comp,
			})
			stage = append(stage, arch.Alternative{Component: comp, Weight: 1})
		}
		sys.Paths = []arch.Path{{Name: "p", TrafficShare: 1, Stages: []arch.Stage{stage}}}
		sys.PathMonitors = []arch.PathMonitor{{Name: "probe", Path: "p"}}
		compiled, err := sys.Compile()
		if err != nil {
			b.Fatal(err)
		}
		return compiled.Recovery
	}
	for _, replicas := range []int{4, 16, 64} {
		rm := build(replicas)
		b.Run(fmt.Sprintf("states=%d/ra-solve", rm.POMDP.NumStates()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Prepare(rm, core.PrepareOptions{OperatorResponseTime: 3600}); err != nil {
					b.Fatal(err)
				}
			}
		})
		prep, err := core.Prepare(rm, core.PrepareOptions{OperatorResponseTime: 3600})
		if err != nil {
			b.Fatal(err)
		}
		engine, err := controller.NewEngine(prep.Model, 1, 1, prep.Set.AsValueFn())
		if err != nil {
			b.Fatal(err)
		}
		pi, err := prep.InitialBelief()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("states=%d/decision", rm.POMDP.NumStates()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.Choose(pi); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDiscounting revisits the paper's Section 2 argument that
// discounting is wrong for recovery: lower β undervalues future recovery
// progress, and the bounded controller's behavior shifts accordingly.
func BenchmarkAblationDiscounting(b *testing.B) {
	for _, beta := range []float64{0.99, 0.999, 1.0} {
		b.Run(fmt.Sprintf("beta=%v", beta), func(b *testing.B) {
			compiled, err := emn.Build(emn.Config{})
			if err != nil {
				b.Fatal(err)
			}
			prep, err := core.Prepare(compiled.Recovery, core.PrepareOptions{
				OperatorResponseTime: emn.OperatorResponseTime,
				Bounds:               bounds.Options{Beta: beta},
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := prep.Bootstrap(10, controller.VariantAverage, 2, rng.New(1)); err != nil {
				b.Fatal(err)
			}
			ctrl, err := prep.NewController(core.ControllerConfig{Depth: 1, ImproveOnline: true})
			if err != nil {
				b.Fatal(err)
			}
			initial, err := prep.InitialBelief()
			if err != nil {
				b.Fatal(err)
			}
			runner, err := sim.NewRunner(compiled.Recovery, 20000)
			if err != nil {
				b.Fatal(err)
			}
			stream := rng.New(2)
			var cost, recovered float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ep := stream.SplitN("ep", i)
				fault := compiled.ZombieStates[ep.IntN(len(compiled.ZombieStates))]
				res, err := runner.RunEpisode(ctrl, initial, fault, ep)
				if err != nil {
					b.Fatal(err)
				}
				cost += res.Cost
				if res.Recovered {
					recovered++
				}
			}
			b.ReportMetric(cost/float64(b.N), "cost/fault")
			b.ReportMetric(100*recovered/float64(b.N), "recovered%")
		})
	}
}

// BenchmarkAblationHeuristicLeaf compares leaf evaluators at equal depth 1:
// the zero leaf (purely myopic), the SRDS'05 heuristic, and the RA-based
// bound — isolating exactly what the leaf contributes.
func BenchmarkAblationHeuristicLeaf(b *testing.B) {
	leaves := []struct {
		name string
		leaf func(prep *core.Prepared) pomdp.ValueFn
	}{
		{"zero", func(*core.Prepared) pomdp.ValueFn {
			return pomdp.ValueFunc(func(pomdp.Belief) float64 { return 0 })
		}},
		{"srds05", func(*core.Prepared) pomdp.ValueFn { return nil }}, // controller default
	}
	compiledBase, err := emn.Build(emn.Config{})
	if err != nil {
		b.Fatal(err)
	}
	for _, l := range leaves {
		b.Run(l.name, func(b *testing.B) {
			rm := compiledBase.Recovery
			var leaf pomdp.ValueFn
			if l.leaf != nil {
				leaf = l.leaf(nil)
			}
			ctrl, err := controller.NewHeuristic(rm.POMDP, controller.HeuristicConfig{
				Depth:                  1,
				NullStates:             rm.NullStates,
				TerminationProbability: 0.9999,
				Leaf:                   leaf,
			})
			if err != nil {
				b.Fatal(err)
			}
			// A short step budget: the zero (myopic) leaf never pays for a
			// restart, observes forever, and times out — that failure IS
			// the ablation's finding, so it is reported, not fatal.
			runner, err := sim.NewRunner(rm, 200)
			if err != nil {
				b.Fatal(err)
			}
			initial := pomdp.UniformBelief(rm.POMDP.NumStates())
			stream := rng.New(2)
			var cost float64
			var timeouts int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ep := stream.SplitN("ep", i)
				fault := compiledBase.ZombieStates[ep.IntN(len(compiledBase.ZombieStates))]
				res, err := runner.RunEpisode(ctrl, initial, fault, ep)
				switch {
				case errors.Is(err, sim.ErrTimedOut):
					timeouts++
				case err != nil:
					b.Fatal(err)
				default:
					cost += res.Cost
				}
			}
			if done := b.N - timeouts; done > 0 {
				b.ReportMetric(cost/float64(done), "cost/fault")
			}
			b.ReportMetric(100*float64(timeouts)/float64(b.N), "timeout%")
		})
	}
	b.Run("ra-bound", func(b *testing.B) {
		benchCampaign(b, experiments.AlgoBounded, emn.Config{})
	})
}

// BenchmarkAblationSeedPlane compares the RA-Bound (uniform random policy)
// against a tilted fixed-policy plane as the bootstrap's starting bound —
// the state-independent generalization the RA proof admits.
func BenchmarkAblationSeedPlane(b *testing.B) {
	seeds := map[string]func(prep *core.Prepared) (linalg.Vector, error){
		"uniform-RA": func(prep *core.Prepared) (linalg.Vector, error) {
			return prep.RA.Clone(), nil
		},
		"tilted-fixed-policy": func(prep *core.Prepared) (linalg.Vector, error) {
			weights := make([]float64, prep.Model.NumActions())
			for a := range weights {
				weights[a] = 1 // reboots, observe
			}
			for a := 0; a < 5; a++ {
				weights[a] = 2 // restarts
			}
			weights[prep.Terminate.Action] = 3
			return bounds.FixedPolicy(prep.Model, weights, bounds.Options{})
		},
	}
	for name, seed := range seeds {
		b.Run(name, func(b *testing.B) {
			prep := preparedEMN(b)
			plane, err := seed(prep)
			if err != nil {
				b.Fatal(err)
			}
			set, err := bounds.NewSet(prep.Model.NumStates(), plane)
			if err != nil {
				b.Fatal(err)
			}
			boot, err := controller.NewBootstrapper(prep.Model, set, controller.BootstrapConfig{
				Variant:                  controller.VariantAverage,
				Depth:                    1,
				FaultStates:              prep.Source.FaultStates(),
				NullStates:               prep.Source.NullStates,
				TerminateAction:          prep.Terminate.Action,
				InitialObservationAction: prep.Source.MonitorAction,
			}, rng.New(1))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var last controller.IterationStats
			for i := 0; i < b.N; i++ {
				st, err := boot.Iterate()
				if err != nil {
					b.Fatal(err)
				}
				last = st
			}
			b.ReportMetric(experiments.UpperBoundOnCost(last.BoundAtUniform), "upperBoundCost")
		})
	}
}

// BenchmarkAblationSOR sweeps the successive-over-relaxation factor of the
// RA-Bound's Gauss-Seidel solve.
func BenchmarkAblationSOR(b *testing.B) {
	compiled, err := emn.Build(emn.Config{})
	if err != nil {
		b.Fatal(err)
	}
	model, _, err := pomdp.WithTermination(compiled.Recovery.POMDP, pomdp.TerminationConfig{
		NullStates:           compiled.Recovery.NullStates,
		OperatorResponseTime: emn.OperatorResponseTime,
		RateReward:           compiled.Recovery.RateRewards,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, omega := range []float64{0.8, 1.0, 1.2, 1.5} {
		b.Run(fmt.Sprintf("omega=%.1f", omega), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bounds.RA(model, bounds.Options{
					Solver: linalg.FixedPointOptions{Omega: omega},
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBranchAndBound compares the exhaustive Max-Avg expansion
// against the QMDP-pruned branch-and-bound engine (the paper's proposed
// future-work extension) at depths 2 and 3 on EMN.
func BenchmarkAblationBranchAndBound(b *testing.B) {
	for _, depth := range []int{2, 3} {
		prep := preparedEMN(b)
		upper, err := bounds.QMDP(prep.Model, bounds.Options{})
		if err != nil {
			b.Fatal(err)
		}
		pi, err := prep.InitialBelief()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("full/depth=%d", depth), func(b *testing.B) {
			engine, err := controller.NewEngine(prep.Model, depth, 1, prep.Set.AsValueFn())
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Choose(pi); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("pruned/depth=%d", depth), func(b *testing.B) {
			engine, err := controller.NewPrunedEngine(prep.Model, depth, 1, prep.Set.AsValueFn(), upper)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := engine.Choose(pi); err != nil {
					b.Fatal(err)
				}
			}
			nodes, pruned := engine.Stats()
			if nodes+pruned > 0 {
				b.ReportMetric(100*float64(pruned)/float64(nodes+pruned), "pruned%")
			}
		})
	}
}

// BenchmarkAblationBoundCapacity caps the hyperplane store (Section 4.3's
// finite-storage strategy) and reports the resulting bound tightness.
func BenchmarkAblationBoundCapacity(b *testing.B) {
	for _, capN := range []int{0, 8, 32} {
		name := fmt.Sprintf("cap=%d", capN)
		if capN == 0 {
			name = "cap=unlimited"
		}
		b.Run(name, func(b *testing.B) {
			compiled, err := emn.Build(emn.Config{})
			if err != nil {
				b.Fatal(err)
			}
			prep, err := core.Prepare(compiled.Recovery, core.PrepareOptions{
				OperatorResponseTime: emn.OperatorResponseTime,
				BoundCapacity:        capN,
			})
			if err != nil {
				b.Fatal(err)
			}
			boot, err := prep.NewBootstrapper(controller.VariantAverage, 1, rng.New(1))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var last controller.IterationStats
			for i := 0; i < b.N; i++ {
				st, err := boot.Iterate()
				if err != nil {
					b.Fatal(err)
				}
				last = st
			}
			b.ReportMetric(experiments.UpperBoundOnCost(last.BoundAtUniform), "upperBoundCost")
			b.ReportMetric(float64(last.Vectors), "vectors")
		})
	}
}

// ---------------------------------------------------------------------------
// Hot-path kernels of the unified campaign engine (also exported as
// machine-readable JSON by cmd/bench / `make bench`).
// ---------------------------------------------------------------------------

// BenchmarkBeliefUpdateReuse measures the controller's steady-state Bayes
// update — pomdp.UpdateInto with a reused destination buffer. It must stay
// allocation-free: the belief tracker ping-pongs two buffers per episode.
func BenchmarkBeliefUpdateReuse(b *testing.B) {
	prep := preparedEMN(b)
	sc := pomdp.NewScratch(prep.Model)
	pi, err := prep.InitialBelief()
	if err != nil {
		b.Fatal(err)
	}
	obsAction := prep.Source.MonitorAction
	succs := prep.Model.Successors(sc, pi, obsAction)
	if len(succs) == 0 {
		b.Fatal("no successors")
	}
	o := succs[0].Obs
	dst := make(pomdp.Belief, len(pi))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prep.Model.UpdateInto(sc, dst, pi, obsAction, o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGSSweep measures one Gauss-Seidel/SOR sweep of the RA-Bound
// iteration matrix (Eq. 5's uniform chain) through linalg.SORKernel — the
// inner loop of every fixed-point solve.
func BenchmarkGSSweep(b *testing.B) {
	compiled, err := emn.Build(emn.Config{})
	if err != nil {
		b.Fatal(err)
	}
	model, _, err := pomdp.WithTermination(compiled.Recovery.POMDP, pomdp.TerminationConfig{
		NullStates:           compiled.Recovery.NullStates,
		OperatorResponseTime: emn.OperatorResponseTime,
		RateReward:           compiled.Recovery.RateRewards,
	})
	if err != nil {
		b.Fatal(err)
	}
	chain, reward, err := model.M.UniformChain()
	if err != nil {
		b.Fatal(err)
	}
	kernel := linalg.NewSORKernel(chain)
	v := make(linalg.Vector, chain.Rows())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernel.Sweep(v, reward, 1, 1)
	}
}

// BenchmarkCampaignThroughput drives full campaigns through the unified
// engine (sim.RunCampaignOpts) at worker counts 1 and 4 and reports
// episodes/sec. Workers=1 is the sequential Table 1 loop.
func BenchmarkCampaignThroughput(b *testing.B) {
	const episodesPer = 16
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			compiled, err := emn.Build(emn.Config{})
			if err != nil {
				b.Fatal(err)
			}
			prep, err := core.Prepare(compiled.Recovery, core.PrepareOptions{
				OperatorResponseTime: emn.OperatorResponseTime,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := prep.Bootstrap(10, controller.VariantAverage, 1, rng.New(3)); err != nil {
				b.Fatal(err)
			}
			initial, err := prep.InitialBelief()
			if err != nil {
				b.Fatal(err)
			}
			runner, err := sim.NewRunner(compiled.Recovery, 20000)
			if err != nil {
				b.Fatal(err)
			}
			pool := make([]controller.Controller, workers)
			for i := range pool {
				if pool[i], err = prep.NewController(core.ControllerConfig{Depth: 1}); err != nil {
					b.Fatal(err)
				}
			}
			var next atomic.Uint64
			factory := func() (controller.Controller, pomdp.Belief, error) {
				return pool[int(next.Add(1)-1)%workers], initial, nil
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := runner.RunCampaignOpts(nil, nil, compiled.ZombieStates, episodesPer, rng.New(uint64(i)), sim.CampaignOptions{
					Workers:       workers,
					WorkerFactory: factory,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Episodes != episodesPer {
					b.Fatalf("campaign completed %d/%d episodes", res.Episodes, episodesPer)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(episodesPer)*float64(b.N)/b.Elapsed().Seconds(), "episodes/sec")
		})
	}
}
